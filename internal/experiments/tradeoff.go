// tradeoff.go implements the headline experiments of Theorem 1.1:
// stabilization time from a full reset (T1), the time-vs-r trade-off curve
// at fixed n (F1), and the scaling of time with n per regime (F2).

package experiments

import (
	"math"

	"sspp"
	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/stats"
)

// safeSetBudget is the interaction budget used when measuring safe-set
// arrival: a generous multiple of the Theorem 1.1 bound (n²/r)·log n. It
// equals sspp.System.DefaultBudget, which the Ensemble layer applies.
func safeSetBudget(n, r int) uint64 {
	return uint64(1000 * float64(n*n) / float64(r) * math.Log(float64(n)+1))
}

// measureSafeSet runs ElectLeader_r from the given adversary class through
// the public Ensemble layer and returns per-seed safe-set arrival times in
// interactions; unfinished runs are dropped (and counted by the caller via
// the failures return). The Ensemble pre-derives each seed's randomness
// deterministically, so the result is independent of the worker count.
func measureSafeSet(cfg Config, n, r int, class adversary.Class) (times []float64, failures int) {
	cell, ok := measureCells(cfg, []sspp.Point{{N: n, R: r}}, []sspp.Adversary{sspp.Adversary(class)})
	if !ok {
		return nil, cfg.seeds()
	}
	return cell[0].Samples, cell[0].Failures
}

// measureCells runs the full points × classes grid through the public
// Ensemble and returns the cells in grid order (points-major). ok is false
// when the grid itself is invalid (e.g. r out of range for a point).
func measureCells(cfg Config, points []sspp.Point, classes []sspp.Adversary) ([]sspp.Cell, bool) {
	ens, err := sspp.NewEnsemble(sspp.Grid{
		Points:      points,
		Adversaries: classes,
		Seeds:       cfg.seeds(),
		BaseSeed:    cfg.BaseSeed,
	}, sspp.Workers(cfg.Workers))
	if err != nil {
		return nil, false
	}
	return ens.Run().Cells, true
}

// T1StabilizeFromReset validates Theorem 1.1 / Lemma 6.2: from a triggered
// configuration the protocol reaches the safe set within O((n²/r)·log n)
// interactions. The normalized column interactions/((n²/r)·ln n) should stay
// roughly flat across n for each regime.
func T1StabilizeFromReset(cfg Config) *Table {
	t := &Table{
		ID:    "T1",
		Title: "stabilization from a triggered configuration (full reset)",
		Claim: "Thm 1.1 / Lemma 6.2: safe set within O((n²/r)·log n) interactions; " +
			"normalized column ≈ flat per regime",
		Header: []string{"n", "r", "mean interactions", "±95%", "parallel time", "norm (n²/r·ln n)", "fails"},
	}
	ns := []int{24, 32, 48}
	if !cfg.Quick {
		ns = []int{24, 32, 48, 64, 96}
	}
	for _, n := range ns {
		for _, r := range regimesFor(n) {
			times, fails := measureSafeSet(cfg, n, r, adversary.ClassTriggered)
			if len(times) == 0 {
				t.Append(itoa(n), itoa(r), "-", "-", "-", "-", itoa(fails))
				continue
			}
			s := stats.Summarize(times)
			norm := s.Mean / (float64(n*n) / float64(r) * math.Log(float64(n)))
			t.Append(itoa(n), itoa(r),
				fmtU(uint64(s.Mean)), fmtU(uint64(s.CI95)),
				fmtF(s.Mean/float64(n), 1), fmtF(norm, 2), itoa(fails))
		}
	}
	return t
}

// regimesFor returns the three r-regimes of the paper for population size n:
// constant (r = 1), polylog (r ≈ log₂ n), and linear (r = n/4).
func regimesFor(n int) []int {
	logR := int(math.Round(math.Log2(float64(n))))
	if logR < 2 {
		logR = 2
	}
	lin := n / 4
	if lin <= logR {
		lin = logR + 1
	}
	return []int{1, logR, lin}
}

// F1TradeoffCurve regenerates the trade-off "figure": time versus r at fixed
// n. Theorem 1.1 predicts interactions ≈ c·(n²/r)·log n, i.e. a log-log
// slope of about −1 until the Θ(n·log n) terms dominate at large r.
func F1TradeoffCurve(cfg Config) *Table {
	n := 64
	rs := []int{1, 2, 4, 8, 16}
	if !cfg.Quick {
		n = 96
		rs = []int{1, 2, 4, 8, 16, 24, 32}
	}
	t := &Table{
		ID:    "F1",
		Title: "space-time trade-off: stabilization time vs r at fixed n",
		Claim: "Thm 1.1: interactions ∝ 1/r (log-log slope ≈ −1 over the r-dominated range); " +
			"state bits grow as O(r²·log n)",
		Header: []string{"r", "mean interactions", "parallel time", "state bits (Fig.1)", "speedup vs r=1"},
	}
	var xs, ys []float64
	var base float64
	for _, r := range rs {
		times, fails := measureSafeSet(cfg, n, r, adversary.ClassTriggered)
		if len(times) == 0 {
			t.Note("r=%d: all %d runs failed", r, fails)
			continue
		}
		s := stats.Summarize(times)
		if base == 0 {
			base = s.Mean
		}
		xs = append(xs, float64(r))
		ys = append(ys, s.Mean)
		t.Append(itoa(r), fmtU(uint64(s.Mean)), fmtF(s.Mean/float64(n), 1),
			fmtU(uint64(core.ElectLeaderBits(float64(n), float64(r)))),
			fmtF(base/s.Mean, 2))
	}
	if len(xs) >= 3 {
		fit := stats.LogLogFit(xs, ys)
		t.Note("log-log slope of interactions vs r (all r): %.2f (R²=%.3f)", fit.Slope, fit.R2)
		// The additive Θ(n·log n) terms (leader election, reset, sleep, the
		// countdown's constant part) flatten the curve at large r; the pure
		// 1/r law shows in the r-dominated range.
		k := 3
		if len(xs) < k {
			k = len(xs)
		}
		lowFit := stats.LogLogFit(xs[:k], ys[:k])
		t.Note("slope over the r-dominated range r ≤ %d: %.2f; theory −1 (Thm 1.1), "+
			"with the n·log n floor taking over at large r", int(xs[k-1]), lowFit.Slope)
	}
	t.Note("n = %d, class = triggered, seeds = %d", n, cfg.seeds())
	return t
}

// F2ScalingInN regenerates the scaling "figure": time versus n per regime,
// with the fitted exponent of n. Theory: r = 1 ⇒ ≈ n²·log n (slope ≈ 2+);
// r = n/4 ⇒ ≈ n·log n (slope ≈ 1+).
func F2ScalingInN(cfg Config) *Table {
	ns := []int{16, 24, 32, 48}
	if !cfg.Quick {
		ns = []int{16, 24, 32, 48, 64, 96}
	}
	t := &Table{
		ID:     "F2",
		Title:  "stabilization time vs n per regime",
		Claim:  "Thm 1.1: interactions = O((n²/r)·log n) ⇒ n-exponent ≈ 2 for r=1 and ≈ 1 for r=Θ(n)",
		Header: []string{"regime", "n", "mean interactions", "parallel time"},
	}
	for _, regime := range []struct {
		name string
		rOf  func(n int) int
	}{
		{"r=1", func(int) int { return 1 }},
		{"r=n/4", func(n int) int { return maxInt(1, n/4) }},
	} {
		var xs, ys []float64
		for _, n := range ns {
			r := regime.rOf(n)
			times, _ := measureSafeSet(cfg, n, r, adversary.ClassTriggered)
			if len(times) == 0 {
				continue
			}
			s := stats.Summarize(times)
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean)
			t.Append(regime.name, itoa(n), fmtU(uint64(s.Mean)), fmtF(s.Mean/float64(n), 1))
		}
		if len(xs) >= 3 {
			fit := stats.LogLogFit(xs, ys)
			t.Note("%s: fitted n-exponent %.2f (R²=%.3f)", regime.name, fit.Slope, fit.R2)
		}
	}
	return t
}

// itoa is a tiny strconv.Itoa shim keeping call sites compact.
func itoa(v int) string { return fmtU(uint64(v)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
