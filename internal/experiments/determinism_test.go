// determinism_test.go pins the acceptance criterion of the parallel trial
// engine: experiment tables must be byte-identical for one worker and for
// GOMAXPROCS workers.
package experiments

import (
	"bytes"
	"runtime"
	"testing"
)

// renderWith runs the generator with the given worker count and returns the
// rendered table bytes.
func renderWith(t *testing.T, gen Generator, workers int) []byte {
	t.Helper()
	cfg := Config{Quick: true, Seeds: 2, BaseSeed: 11, Workers: workers}
	var buf bytes.Buffer
	gen(cfg).Render(&buf)
	return buf.Bytes()
}

// TestTablesWorkerCountIndependent renders a representative slice of the
// experiment registry — the measureSafeSet-based headline experiments, the
// harness-based detection experiments, an events-reading recovery
// experiment, and an ablation — sequentially and in parallel, and requires
// byte identity. The parallel worker count is at least 4 even on a
// single-CPU host: goroutine interleaving still exercises out-of-order
// completion, which is what the aggregation must be robust to.
func TestTablesWorkerCountIndependent(t *testing.T) {
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	registry := All()
	for _, id := range []string{"T1", "T7", "T9", "T14", "A2", "T-ring"} {
		gen := registry[id]
		if gen == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := renderWith(t, gen, 1)
			par := renderWith(t, gen, parallel)
			if !bytes.Equal(seq, par) {
				t.Fatalf("table %s differs between workers=1 and workers=%d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, parallel, seq, par)
			}
		})
	}
}
