// recovery.go implements the recovery experiments: the soft-reset guarantee
// (T9, §3.2) and the full recovery ladder over every adversarial class
// (T10, Lemma 6.3).

package experiments

import (
	"sspp"
	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
	"sspp/internal/verify"
)

// preservationOutcome is the result of one ranking-preservation trial (T9
// and the A1 ablation): did the run finish, and did the pre-existing
// ranking survive recovery?
type preservationOutcome struct {
	ran, finished, preserved bool
	took, soft               float64
	hard                     uint64
}

// preservationTrial builds ElectLeader_r (with optional constant overrides),
// applies the adversary class, snapshots the rank outputs, runs to the safe
// set, and reports whether the ranking was preserved. The seed offsets (+3
// adversary, +5 scheduler) are shared by T9 and A1.
func preservationTrial(n, r int, consts *core.Constants, seed uint64, class adversary.Class) preservationOutcome {
	ev := sim.NewEvents()
	opts := []core.Option{core.WithSeed(seed), core.WithEvents(ev)}
	if consts != nil {
		opts = append(opts, core.WithConstants(*consts))
	}
	p, err := core.New(n, r, opts...)
	if err != nil {
		return preservationOutcome{}
	}
	if err := adversary.Apply(p, class, rng.New(seed+3)); err != nil {
		return preservationOutcome{} // class unrealizable at this (n, r); skip run
	}
	before := make([]int32, n)
	for i := 0; i < n; i++ {
		before[i] = p.RankOutput(i)
	}
	out := preservationOutcome{ran: true}
	took, ok := p.RunToSafeSet(rng.New(seed+5), safeSetBudget(n, r))
	if !ok {
		return out
	}
	out.finished = true
	out.took = float64(took)
	out.hard = ev.Count(core.EventHardReset)
	out.soft = float64(ev.Count(verify.EventSoftReset))
	out.preserved = true
	for i := 0; i < n; i++ {
		if p.RankOutput(i) != before[i] {
			out.preserved = false
			break
		}
	}
	return out
}

// T9SoftReset validates §3.2: with a correct ranking and corrupted (or
// duplicated) circulating messages, recovery happens through soft resets
// only — zero hard resets, ranking bit-identical afterwards.
func T9SoftReset(cfg Config) *Table {
	t := &Table{
		ID:     "T9",
		Title:  "soft-reset mechanism: message faults with a correct ranking",
		Claim:  "§3.2: repair via soft resets only; the ranking survives (0 hard resets)",
		Header: []string{"fault", "n", "r", "runs", "hard resets", "soft resets (mean)", "ranking preserved", "safe-set time (mean)"},
	}
	cases := []struct{ n, r int }{{12, 6}, {16, 4}}
	if !cfg.Quick {
		cases = append(cases, struct{ n, r int }{24, 8})
	}
	for _, class := range []adversary.Class{adversary.ClassCorruptMessages, adversary.ClassDuplicateMessages} {
		for _, c := range cases {
			results := seedTrials(cfg, cfg.seeds(), func(s int) preservationOutcome {
				return preservationTrial(c.n, c.r, nil, cfg.BaseSeed+uint64(s), class)
			})
			runs, hard := 0, uint64(0)
			preserved := 0
			var soft, times stats.Acc
			for _, o := range results {
				if !o.ran {
					continue
				}
				runs++
				if !o.finished {
					continue
				}
				times.Add(o.took)
				hard += o.hard
				soft.Add(o.soft)
				if o.preserved {
					preserved++
				}
			}
			if runs == 0 {
				t.Append(string(class), itoa(c.n), itoa(c.r), "0", "-", "-", "-", "-")
				continue
			}
			t.Append(string(class), itoa(c.n), itoa(c.r), itoa(runs),
				fmtU(hard), fmtF(soft.Mean(), 1),
				itoa(preserved)+"/"+itoa(runs), fmtU(uint64(times.Mean())))
		}
	}
	return t
}

// T10Recovery walks the recovery ladder of Lemma 6.3: from every adversarial
// class the protocol reaches the safe set, and the table records how long it
// took and how many hard resets were needed. The whole ladder is one public
// Ensemble grid: a single (n, r) point crossed with every adversary class.
func T10Recovery(cfg Config) *Table {
	const n, r = 32, 8
	t := &Table{
		ID:    "T10",
		Title: "recovery ladder: safe-set arrival from every adversarial class",
		Claim: "Lemma 6.3: reset-or-safe within O((n²/r)·log n) from any configuration " +
			"(n=32, r=8)",
		Header: []string{"class", "description", "mean safe-set time", "±95%", "hard resets (mean)", "fails"},
	}
	cells, ok := measureCells(cfg, []sspp.Point{{N: n, R: r}}, sspp.AdversaryClasses())
	if !ok {
		t.Note("grid rejected by the ensemble layer")
		return t
	}
	for _, cell := range cells {
		class := cell.Adversary
		if cell.Recovered == 0 {
			t.Append(string(class), sspp.DescribeAdversary(class), "-", "-", "-", itoa(cell.Failures))
			continue
		}
		t.Append(string(class), sspp.DescribeAdversary(class),
			fmtU(uint64(cell.Interactions.Mean)), fmtU(uint64(cell.Interactions.CI95)),
			fmtF(cell.HardResets.Mean, 1), itoa(cell.Failures))
	}
	t.Note("probation-skew reads 0: a correctly ranked single-generation configuration with " +
		"positive probation timers already satisfies Lemma 6.1 (condition (b) holds vacuously)")
	t.Note("message-layer classes (corrupt/duplicate-messages) recover orders of magnitude " +
		"faster and with 0 hard resets: the soft-reset path of §3.2")
	return t
}
