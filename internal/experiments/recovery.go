// recovery.go implements the recovery experiments: the soft-reset guarantee
// (T9, §3.2) and the full recovery ladder over every adversarial class
// (T10, Lemma 6.3).

package experiments

import (
	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
	"sspp/internal/verify"
)

// T9SoftReset validates §3.2: with a correct ranking and corrupted (or
// duplicated) circulating messages, recovery happens through soft resets
// only — zero hard resets, ranking bit-identical afterwards.
func T9SoftReset(cfg Config) *Table {
	t := &Table{
		ID:     "T9",
		Title:  "soft-reset mechanism: message faults with a correct ranking",
		Claim:  "§3.2: repair via soft resets only; the ranking survives (0 hard resets)",
		Header: []string{"fault", "n", "r", "runs", "hard resets", "soft resets (mean)", "ranking preserved", "safe-set time (mean)"},
	}
	cases := []struct{ n, r int }{{12, 6}, {16, 4}}
	if !cfg.Quick {
		cases = append(cases, struct{ n, r int }{24, 8})
	}
	for _, class := range []adversary.Class{adversary.ClassCorruptMessages, adversary.ClassDuplicateMessages} {
		for _, c := range cases {
			runs, hard := 0, uint64(0)
			preserved := 0
			var soft, times stats.Acc
			for s := 0; s < cfg.seeds(); s++ {
				seed := cfg.BaseSeed + uint64(s)
				ev := sim.NewEvents()
				p, err := core.New(c.n, c.r, core.WithSeed(seed), core.WithEvents(ev))
				if err != nil {
					continue
				}
				if err := adversary.Apply(p, class, rng.New(seed+3)); err != nil {
					continue // class unrealizable at this (n, r); skip run
				}
				before := make([]int32, c.n)
				for i := 0; i < c.n; i++ {
					before[i] = p.RankOutput(i)
				}
				runs++
				took, ok := p.RunToSafeSet(rng.New(seed+5), safeSetBudget(c.n, c.r))
				if !ok {
					continue
				}
				times.Add(float64(took))
				hard += ev.Count(core.EventHardReset)
				soft.Add(float64(ev.Count(verify.EventSoftReset)))
				same := true
				for i := 0; i < c.n; i++ {
					if p.RankOutput(i) != before[i] {
						same = false
						break
					}
				}
				if same {
					preserved++
				}
			}
			if runs == 0 {
				t.Append(string(class), itoa(c.n), itoa(c.r), "0", "-", "-", "-", "-")
				continue
			}
			t.Append(string(class), itoa(c.n), itoa(c.r), itoa(runs),
				fmtU(hard), fmtF(soft.Mean(), 1),
				itoa(preserved)+"/"+itoa(runs), fmtU(uint64(times.Mean())))
		}
	}
	return t
}

// T10Recovery walks the recovery ladder of Lemma 6.3: from every adversarial
// class the protocol reaches the safe set, and the table records how long it
// took and how many hard resets were needed.
func T10Recovery(cfg Config) *Table {
	const n, r = 32, 8
	t := &Table{
		ID:    "T10",
		Title: "recovery ladder: safe-set arrival from every adversarial class",
		Claim: "Lemma 6.3: reset-or-safe within O((n²/r)·log n) from any configuration " +
			"(n=32, r=8)",
		Header: []string{"class", "description", "mean safe-set time", "±95%", "hard resets (mean)", "fails"},
	}
	for _, class := range adversary.Classes() {
		var times, hard stats.Acc
		fails := 0
		for s := 0; s < cfg.seeds(); s++ {
			seed := cfg.BaseSeed + uint64(s)*17
			ev := sim.NewEvents()
			p, err := core.New(n, r, core.WithSeed(seed), core.WithEvents(ev))
			if err != nil {
				fails++
				continue
			}
			if err := adversary.Apply(p, class, rng.New(seed+1)); err != nil {
				fails++
				continue
			}
			took, ok := p.RunToSafeSet(rng.New(seed+2), safeSetBudget(n, r))
			if !ok {
				fails++
				continue
			}
			times.Add(float64(took))
			hard.Add(float64(ev.Count(core.EventHardReset)))
		}
		if times.N() == 0 {
			t.Append(string(class), adversary.Describe(class), "-", "-", "-", itoa(fails))
			continue
		}
		t.Append(string(class), adversary.Describe(class),
			fmtU(uint64(times.Mean())), fmtU(uint64(times.CI95())),
			fmtF(hard.Mean(), 1), itoa(fails))
	}
	t.Note("probation-skew reads 0: a correctly ranked single-generation configuration with " +
		"positive probation timers already satisfies Lemma 6.1 (condition (b) holds vacuously)")
	t.Note("message-layer classes (corrupt/duplicate-messages) recover orders of magnitude " +
		"faster and with 0 hard resets: the soft-reset path of §3.2")
	return t
}
