// ablations.go implements the design-choice ablations called out in
// DESIGN.md: each switches off or rescales one mechanism of ElectLeader_r
// and measures what the paper's analysis says should break.
//
//	A1 — soft reset disabled (§3.2): message faults destroy correct rankings.
//	A2 — probation ceiling P_max scaled: too small misclassifies genuine
//	     collisions as message noise and slows recovery.
//	A3 — signature refresh period (Protocol 13's c·log r): too large delays
//	     detection; too small is tolerated (refreshes are cheap).
//	A4 — load balancing disabled (Protocol 14): refreshed messages do not
//	     circulate and detection degrades.

package experiments

import (
	"math"

	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/detect"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
	"sspp/internal/verify"
)

// A1SoftResetAblation reruns the T9 scenario (correct ranking, corrupted
// messages) with the soft-reset mechanism disabled: every ⊤ becomes a full
// reset, so the pre-existing correct ranking is destroyed and recovery costs
// a complete re-ranking.
func A1SoftResetAblation(cfg Config) *Table {
	t := &Table{
		ID:    "A1",
		Title: "ablation: soft reset disabled (every ⊤ hard-resets)",
		Claim: "§3.2: without soft resets, message corruption on a correct ranking " +
			"forces a full re-ranking (ranking preserved drops to 0), and recovery slows",
		Header: []string{"variant", "n", "r", "hard resets (mean)", "ranking preserved", "safe-set time (mean)"},
	}
	const n, r = 12, 6
	for _, hardOnly := range []bool{false, true} {
		name := "paper (soft reset)"
		if hardOnly {
			name = "ablated (hard only)"
		}
		results := seedTrials(cfg, cfg.seeds(), func(s int) preservationOutcome {
			consts := core.DefaultConstants(n, r)
			consts.DisableSoftReset = hardOnly
			return preservationTrial(n, r, &consts, cfg.BaseSeed+uint64(s), adversary.ClassCorruptMessages)
		})
		var hard, times stats.Acc
		preserved, runs := 0, 0
		for _, o := range results {
			if !o.ran {
				continue
			}
			runs++
			if !o.finished {
				continue
			}
			times.Add(o.took)
			hard.Add(float64(o.hard))
			if o.preserved {
				preserved++
			}
		}
		t.Append(name, itoa(n), itoa(r), fmtF(hard.Mean(), 1),
			itoa(preserved)+"/"+itoa(runs), fmtU(uint64(times.Mean())))
	}
	return t
}

// A2ProbationAblation scales P_max and measures recovery from a genuine rank
// collision. A tiny P_max lets agents leave probation before detection
// completes, so the first ⊤ is soft (wasted round trip) and escalation to
// the necessary hard reset is delayed.
func A2ProbationAblation(cfg Config) *Table {
	t := &Table{
		ID:    "A2",
		Title: "ablation: probation ceiling P_max scaled",
		Claim: "§3.2/Lemma F.5: P_max must exceed the detection latency; " +
			"small P_max wastes soft resets on genuine collisions before escalating",
		Header: []string{"P_max factor", "P_max", "soft resets (mean)", "hard resets (mean)", "safe-set time (mean)", "fails"},
	}
	// A large group (r = n/2) makes detection latency non-trivial, so an
	// undersized P_max expires before detection and the escalation of
	// Protocol 2 misfires into repeated soft resets.
	const n, r = 32, 16
	base := verify.DefaultPMax(n, r)
	for _, factor := range []float64{0.02, 0.25, 1, 4} {
		pmax := int32(math.Max(1, factor*float64(base)))
		type outcome struct {
			ok               bool
			took, soft, hard float64
		}
		results := seedTrials(cfg, cfg.seeds(), func(s int) outcome {
			seed := cfg.BaseSeed + uint64(s)
			consts := core.DefaultConstants(n, r)
			consts.PMax = pmax
			ev := sim.NewEvents()
			p, err := core.New(n, r, core.WithSeed(seed), core.WithConstants(consts), core.WithEvents(ev))
			if err != nil {
				return outcome{}
			}
			if err := adversary.Apply(p, adversary.ClassTwoLeaders, rng.New(seed+3)); err != nil {
				return outcome{}
			}
			took, ok := p.RunToSafeSet(rng.New(seed+5), safeSetBudget(n, r))
			if !ok {
				return outcome{}
			}
			return outcome{ok: true, took: float64(took),
				soft: float64(ev.Count(verify.EventSoftReset)),
				hard: float64(ev.Count(core.EventHardReset))}
		})
		var soft, hard, times stats.Acc
		fails := 0
		for _, o := range results {
			if !o.ok {
				fails++
				continue
			}
			times.Add(o.took)
			soft.Add(o.soft)
			hard.Add(o.hard)
		}
		if times.N() == 0 {
			t.Append(fmtF(factor, 2), itoa(int(pmax)), "-", "-", "-", itoa(fails))
			continue
		}
		t.Append(fmtF(factor, 2), itoa(int(pmax)), fmtF(soft.Mean(), 1), fmtF(hard.Mean(), 1),
			fmtU(uint64(times.Mean())), itoa(fails))
	}
	return t
}

// A3RefreshAblation varies the signature refresh constant of Protocol 13 and
// measures detection latency under a duplicated rank (the T7 workload).
// Without refreshes (huge period) the two same-rank agents keep identical
// signature 1 forever and message contents never conflict.
func A3RefreshAblation(cfg Config) *Table {
	t := &Table{
		ID:    "A3",
		Title: "ablation: signature refresh period (Protocol 13)",
		Claim: "§3.1: refreshes every Θ(log r) interactions drive detection; " +
			"rare refreshes delay it toward the direct-meeting bound",
		Header: []string{"refresh c", "mean interactions to ⊤", "p90", "misses"},
	}
	const n, r = 24, 12
	ranks := make([]int32, n)
	for i := range ranks {
		ranks[i] = int32(i + 1)
	}
	ranks[1] = 1
	for _, c := range []int{1, 8, 64, 100000} {
		times, misses := seedTimes(cfg, 2*cfg.seeds(), func(s int) (float64, bool) {
			seed := cfg.BaseSeed + uint64(s)
			h, err := newHarnessWithRefresh(n, r, ranks, seed, c)
			if err != nil {
				return 0, false
			}
			res := sim.Run(h, rng.New(seed+41), sim.Options{
				MaxInteractions:    4 * safeSetBudget(n, r),
				CheckEvery:         uint64(n / 2),
				StopAfterStableFor: 1,
			})
			return float64(res.StabilizedAt), res.Stabilized
		})
		if len(times) == 0 {
			t.Append(itoa(c), "-", "-", itoa(misses))
			continue
		}
		s := stats.Summarize(times)
		t.Append(itoa(c), fmtU(uint64(s.Mean)), fmtU(uint64(s.P90)), itoa(misses))
	}
	t.Note("c=100000 effectively disables refreshes: detection falls back to direct " +
		"same-rank meetings and duplicate-message checks")
	return t
}

// newHarnessWithRefresh builds a detect harness with a custom refresh
// constant.
func newHarnessWithRefresh(n, r int, ranks []int32, seed uint64, c int) (*detect.Harness, error) {
	h, err := detect.NewHarness(n, r, ranks, rng.New(seed))
	if err != nil {
		return nil, err
	}
	*h.Params() = *detect.NewParamsWithRefresh(n, r, c)
	return h, nil
}

// A4LoadBalanceAblation disables BalanceLoad and measures detection latency
// from the adversarial message distribution the mechanism exists to repair:
// all messages of the duplicated rank clumped at a single third agent. With
// balancing the hoard disperses in O(n·log n) and the signature-conflict
// amplification works; without it the two duplicates must both personally
// visit the hoarder (or meet each other directly).
func A4LoadBalanceAblation(cfg Config) *Table {
	t := &Table{
		ID:    "A4",
		Title: "ablation: load balancing (Protocol 14) disabled, clumped start",
		Claim: "§3.1/Lemma E.6: balancing maintains the per-rank holding invariant that " +
			"makes detection fast; from a clumped start its removal slows detection",
		Header: []string{"variant", "n", "mean interactions to ⊤", "p90", "misses"},
	}
	const n = 32 // one group: r = n, the full-messaging regime
	ranks := make([]int32, n)
	for i := range ranks {
		ranks[i] = int32(i + 1)
	}
	ranks[1] = 1 // agents 0 and 1 collide on rank 1
	for _, disable := range []bool{false, true} {
		name := "paper (balanced)"
		if disable {
			name = "ablated (no balancing)"
		}
		times, misses := seedTimes(cfg, 2*cfg.seeds(), func(s int) (float64, bool) {
			seed := cfg.BaseSeed + uint64(s)
			h, err := detect.NewHarness(n, n/2, ranks, rng.New(seed))
			if err != nil {
				return 0, false
			}
			h.Params().SetNoBalance(disable)
			if err := h.ClumpRankMessages(1, 4); err != nil {
				return 0, false
			}
			res := sim.Run(h, rng.New(seed+41), sim.Options{
				MaxInteractions:    8 * safeSetBudget(n, n/2),
				CheckEvery:         uint64(n / 2),
				StopAfterStableFor: 1,
			})
			return float64(res.StabilizedAt), res.Stabilized
		})
		if len(times) == 0 {
			t.Append(name, itoa(n), "-", "-", itoa(misses))
			continue
		}
		s := stats.Summarize(times)
		t.Append(name, itoa(n), fmtU(uint64(s.Mean)), fmtU(uint64(s.P90)), itoa(misses))
	}
	return t
}
