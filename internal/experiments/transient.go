// transient.go implements experiment T14: transient faults striking a
// stabilized population mid-run — the failure model that motivates
// self-stabilization in the first place (§1: "memory and states can be
// corrupted through all kinds of outside influences"). A stabilized
// population has k agents corrupted in place; we measure the time to return
// to the safe set as a function of the fault burst size. The whole shape
// runs through the generalized Ensemble's TransientK recovery mode, which
// stabilizes, strikes through the Injectable capability, and reports
// post-fault recovery statistics.

package experiments

import (
	"sspp"
)

// T14TransientFaults measures re-stabilization after mid-run corruption of
// k agents, for k from a single victim to the whole population.
func T14TransientFaults(cfg Config) *Table {
	const n, r = 32, 8
	t := &Table{
		ID:    "T14",
		Title: "transient faults: re-stabilization after corrupting k agents mid-run",
		Claim: "self-stabilization (Thm 1.1) covers any burst size; small bursts that do " +
			"not fake a consistent ranking are detected and recovered within the same " +
			"O((n²/r)·log n) envelope (n=32, r=8)",
		Header: []string{"k victims", "recovered", "mean re-stabilization", "±95%", "hard resets (mean)"},
	}
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		ens, err := sspp.NewEnsemble(sspp.Grid{
			Points:     []sspp.Point{{N: n, R: r}},
			Seeds:      cfg.seeds(),
			BaseSeed:   cfg.BaseSeed,
			TransientK: k,
		}, sspp.Workers(cfg.Workers))
		if err != nil {
			t.Note("k=%d grid rejected: %v", k, err)
			continue
		}
		cell := ens.Run().Cells[0]
		if cell.Recovered == 0 {
			t.Append(itoa(k), "0/"+itoa(cfg.seeds()), "-", "-", "-")
			continue
		}
		t.Append(itoa(k), itoa(cell.Recovered)+"/"+itoa(cfg.seeds()),
			fmtU(uint64(cell.Interactions.Mean)), fmtU(uint64(cell.Interactions.CI95)),
			fmtF(cell.HardResets.Mean, 1))
	}
	t.Note("victims get random type-valid states (rank claims, resets, scrambled timers, " +
		"corrupted messages); the untouched majority detects the inconsistency and resets")
	t.Note("k=1 with a lucky non-conflicting corruption can be absorbed without any reset; " +
		"larger bursts almost always force one full re-ranking")
	t.Note("runs through the Ensemble TransientK recovery mode: stabilize, corrupt k agents " +
		"via the injectable capability, re-run the same engine to the safe set")
	return t
}
