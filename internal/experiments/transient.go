// transient.go implements experiment T14: transient faults striking a
// stabilized population mid-run — the failure model that motivates
// self-stabilization in the first place (§1: "memory and states can be
// corrupted through all kinds of outside influences"). A stabilized
// population has k agents corrupted in place; we measure the time to return
// to the safe set as a function of the fault burst size.

package experiments

import (
	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
)

// T14TransientFaults measures re-stabilization after mid-run corruption of
// k agents, for k from a single victim to the whole population.
func T14TransientFaults(cfg Config) *Table {
	const n, r = 32, 8
	t := &Table{
		ID:    "T14",
		Title: "transient faults: re-stabilization after corrupting k agents mid-run",
		Claim: "self-stabilization (Thm 1.1) covers any burst size; small bursts that do " +
			"not fake a consistent ranking are detected and recovered within the same " +
			"O((n²/r)·log n) envelope (n=32, r=8)",
		Header: []string{"k victims", "recovered", "mean re-stabilization", "±95%", "hard resets (mean)"},
	}
	type outcome struct {
		ok         bool
		took, hard float64
	}
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		results := seedTrials(cfg, cfg.seeds(), func(s int) outcome {
			seed := cfg.BaseSeed + uint64(s)*31
			ev := sim.NewEvents()
			p, err := core.New(n, r, core.WithSeed(seed), core.WithEvents(ev))
			if err != nil {
				return outcome{}
			}
			// Stabilize first.
			if _, ok := p.RunToSafeSet(rng.New(seed+1), safeSetBudget(n, r)); !ok {
				return outcome{}
			}
			hardBefore := ev.Count(core.EventHardReset)
			// Strike.
			adversary.Transient(p, k, rng.New(seed+2))
			// Recover.
			took, ok := p.RunToSafeSet(rng.New(seed+3), safeSetBudget(n, r))
			if !ok {
				return outcome{}
			}
			return outcome{ok: true, took: float64(took),
				hard: float64(ev.Count(core.EventHardReset) - hardBefore)}
		})
		var times, hard stats.Acc
		recovered := 0
		for _, o := range results {
			if !o.ok {
				continue
			}
			recovered++
			times.Add(o.took)
			hard.Add(o.hard)
		}
		if times.N() == 0 {
			t.Append(itoa(k), "0/"+itoa(cfg.seeds()), "-", "-", "-")
			continue
		}
		t.Append(itoa(k), itoa(recovered)+"/"+itoa(cfg.seeds()),
			fmtU(uint64(times.Mean())), fmtU(uint64(times.CI95())), fmtF(hard.Mean(), 1))
	}
	t.Note("victims get random type-valid states (rank claims, resets, scrambled timers, " +
		"corrupted messages); the untouched majority detects the inconsistency and resets")
	t.Note("k=1 with a lucky non-conflicting corruption can be absorbed without any reset; " +
		"larger bursts almost always force one full re-ranking")
	return t
}
