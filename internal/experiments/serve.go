// serve.go implements experiment S4: the cost profile of the sppd
// simulation service (cmd/sppd, internal/serve). The service's claim is
// architectural, not statistical — a cell's result is a pure function of
// its resolved config, so a content-addressed cache can serve warm repeats
// byte-identically without re-simulating — and S4 measures what that buys:
// cold-vs-warm latency per grid, the hit ratio of an overlapping request
// mix, and singleflight dedup under concurrent identical submissions.
// Byte-identity itself is enforced by internal/serve's tests; this table
// records the latency side of the trade the way S1 records the species
// backend's.

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"sspp"
	"sspp/internal/serve"
)

// s4Grid is one request of the S4 mix.
type s4Grid struct {
	phase string // row label
	spec  serve.GridSpec
}

// s4Mix builds the request sequence: a cold grid, its warm repeat, an
// overlapping superset (half shared cells, half new), and the warm repeat
// of the superset.
func s4Mix(cfg Config) []s4Grid {
	pts := []sspp.Point{{N: 96, R: 8}, {N: 128, R: 16}}
	extra := []sspp.Point{{N: 160, R: 16}, {N: 192, R: 16}}
	if cfg.Quick {
		pts = []sspp.Point{{N: 48, R: 8}, {N: 64, R: 8}}
		extra = []sspp.Point{{N: 80, R: 8}, {N: 96, R: 8}}
	}
	base := serve.GridSpec{Points: pts, Seeds: cfg.seeds(), BaseSeed: cfg.BaseSeed}
	super := base
	super.Points = append(append([]sspp.Point(nil), pts...), extra...)
	return []s4Grid{
		{"cold", base},
		{"warm repeat", base},
		{"overlap cold", super},
		{"overlap warm", super},
	}
}

// s4Provenance is the parsed X-Sppd-Cache header ("computed=1 dedup=0
// memory=0 disk=0").
type s4Provenance struct {
	computed, dedup, memory, disk int
}

func parseProvenance(h string) (p s4Provenance) {
	fmt.Sscanf(h, "computed=%d dedup=%d memory=%d disk=%d",
		&p.computed, &p.dedup, &p.memory, &p.disk)
	return p
}

func (p s4Provenance) cells() int { return p.computed + p.dedup + p.memory + p.disk }

// hitRatio is the fraction of cells served without simulating.
func (p s4Provenance) hitRatio() float64 {
	if p.cells() == 0 {
		return 0
	}
	return float64(p.dedup+p.memory+p.disk) / float64(p.cells())
}

// s4Submit posts the grid synchronously and returns latency, provenance
// and the response bytes.
func s4Submit(ts *httptest.Server, spec serve.GridSpec) (time.Duration, s4Provenance, []byte, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, s4Provenance{}, nil, err
	}
	start := time.Now() //sspp:allow rngdiscipline -- cache latency is a wall-clock measurement by design
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, s4Provenance{}, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	elapsed := time.Since(start) //sspp:allow rngdiscipline -- cache latency is a wall-clock measurement by design
	if err != nil {
		return 0, s4Provenance{}, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, s4Provenance{}, nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return elapsed, parseProvenance(resp.Header.Get("X-Sppd-Cache")), b, nil
}

// S4ServeCache measures the sppd result cache: cold and warm latency for
// repeated and overlapping grids, then singleflight dedup under concurrent
// identical submissions.
func S4ServeCache(cfg Config) *Table {
	t := &Table{
		ID:    "S4",
		Title: "sppd result cache: cold vs warm grid latency, hit ratios, singleflight dedup",
		Claim: "cell results are pure functions of their resolved configs (deriveSeedStreams), so warm " +
			"repeats are served from the content-addressed cache byte-identically, orders of magnitude " +
			"faster than simulating; overlapping grids re-compute only their new cells",
		Header: []string{"request", "cells", "computed", "cache-hits", "hit-ratio", "latency", "speedup"},
	}
	srv, err := serve.NewServer(serve.Options{Workers: cfg.workers()})
	if err != nil {
		t.Note("server construction failed: %v", err)
		return t
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var coldLatency time.Duration
	bodies := make(map[string][]byte)
	for _, g := range s4Mix(cfg) {
		elapsed, prov, body, err := s4Submit(ts, g.spec)
		if err != nil {
			t.Note("%s failed: %v", g.phase, err)
			continue
		}
		speedup := "-"
		if g.phase == "cold" {
			coldLatency = elapsed
		} else if strings.Contains(g.phase, "warm") && elapsed > 0 && coldLatency > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(coldLatency)/float64(elapsed))
		}
		t.Append(g.phase, fmt.Sprintf("%d", prov.cells()), fmt.Sprintf("%d", prov.computed),
			fmt.Sprintf("%d", prov.dedup+prov.memory+prov.disk),
			fmtF(prov.hitRatio(), 2), elapsed.Round(10*time.Microsecond).String(), speedup)

		// Byte-identity spot check: repeats of a spec must serve the exact
		// bytes of its first response.
		key := fmt.Sprintf("%d-points", len(g.spec.Points))
		if prev, ok := bodies[key]; ok && !bytes.Equal(prev, body) {
			t.Note("BYTE-IDENTITY VIOLATION on %s: warm bytes differ from cold", g.phase)
		}
		bodies[key] = body
	}

	// Singleflight: flood a fresh cell with identical concurrent
	// submissions; the server must simulate once and coalesce the rest.
	flood := serve.GridSpec{Points: []sspp.Point{{N: 72, R: 8}}, Seeds: cfg.seeds(), BaseSeed: cfg.BaseSeed + 1}
	const clients = 6
	provs := make([]s4Provenance, clients)
	start := time.Now() //sspp:allow rngdiscipline -- cache latency is a wall-clock measurement by design
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, prov, _, err := s4Submit(ts, flood)
			if err == nil {
				provs[i] = prov
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start) //sspp:allow rngdiscipline -- cache latency is a wall-clock measurement by design
	var total s4Provenance
	for _, p := range provs {
		total.computed += p.computed
		total.dedup += p.dedup
		total.memory += p.memory
		total.disk += p.disk
	}
	t.Append(fmt.Sprintf("%d concurrent identical", clients), fmt.Sprintf("%d", total.cells()),
		fmt.Sprintf("%d", total.computed), fmt.Sprintf("%d", total.dedup+total.memory+total.disk),
		fmtF(total.hitRatio(), 2), elapsed.Round(10*time.Microsecond).String(), "-")
	if total.computed != 1 {
		t.Note("SINGLEFLIGHT VIOLATION: %d concurrent identical submissions simulated %d cells, want 1",
			clients, total.computed)
	}
	t.Note("latency columns are wall clock (machine-dependent); provenance and hit ratios are deterministic")
	return t
}
