package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:     "TX",
		Title:  "demo",
		Claim:  "something holds",
		Header: []string{"a", "bb"},
	}
	tb.Append("1", "2")
	tb.Append("333", "4")
	tb.Note("observation %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== TX: demo ==", "claim: something holds", "a    bb", "333", "note: observation 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIDsOrderAndRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs/All mismatch: %d vs %d", len(ids), len(All()))
	}
	if ids[0] != "T1" || ids[1] != "F1" || ids[2] != "F2" || ids[3] != "T2" {
		t.Fatalf("presentation order wrong: %v", ids[:4])
	}
	for _, id := range ids {
		if All()[id] == nil {
			t.Fatalf("registry missing %s", id)
		}
	}
}

func TestFmtU(t *testing.T) {
	cases := map[uint64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		1000000000: "1,000,000,000",
	}
	for v, want := range cases {
		if got := fmtU(v); got != want {
			t.Errorf("fmtU(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestSciBits(t *testing.T) {
	if got := sciBits(1234); got != "1,234" {
		t.Fatalf("sciBits small = %q", got)
	}
	if got := sciBits(2.5e9); got != "2.50e9" {
		t.Fatalf("sciBits large = %q", got)
	}
}

func TestRegimesFor(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		rs := regimesFor(n)
		if len(rs) != 3 || rs[0] != 1 {
			t.Fatalf("regimesFor(%d) = %v", n, rs)
		}
		for _, r := range rs {
			if r < 1 || r > n/2 {
				t.Fatalf("regimesFor(%d) produced out-of-range r = %d", n, r)
			}
		}
	}
}

func TestConfigSeeds(t *testing.T) {
	if (Config{}).seeds() != 5 {
		t.Fatal("default seeds")
	}
	if (Config{Quick: true}).seeds() != 3 {
		t.Fatal("quick seeds")
	}
	if (Config{Seeds: 9}).seeds() != 9 {
		t.Fatal("explicit seeds")
	}
}

// TestQuickExperimentsSmoke runs every experiment generator end to end in
// quick mode with a single seed and checks that each produces a plausible
// table. This keeps the full harness exercised by `go test` while
// cmd/benchtab produces the real (multi-seed, full-size) tables.
func TestQuickExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is not -short")
	}
	cfg := Config{Quick: true, Seeds: 1}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tb := All()[id](cfg)
			if tb.ID != id {
				t.Fatalf("table ID = %q", tb.ID)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if tb.Title == "" || tb.Claim == "" || len(tb.Header) == 0 {
				t.Fatal("table metadata incomplete")
			}
			var buf bytes.Buffer
			tb.Render(&buf)
			if buf.Len() == 0 {
				t.Fatal("empty render")
			}
		})
	}
}

// TestT8SoundnessZeroFalsePositives asserts the hard guarantee of Lemma
// E.1(a) through the experiment harness itself.
func TestT8SoundnessZeroFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	tb := T8Soundness(Config{Quick: true, Seeds: 2})
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Fatalf("false positives in soundness row %v", row)
		}
		if row[4] != "ok" || row[5] != "ok" {
			t.Fatalf("invariant violation in soundness row %v", row)
		}
	}
}
