// Package experiments implements the reproduction harness: one generator
// per experiment in DESIGN.md §5 (T1–T16, F1–F2, ablations A1–A4), each
// producing a Table
// that cmd/benchtab renders. The paper is a theory paper without empirical
// tables, so each experiment validates a stated theorem or lemma and records
// the expected asymptotic shape next to the measured values; EXPERIMENTS.md
// archives the outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sspp/internal/rng"
	"sspp/internal/trials"
)

// Config controls experiment sizes and replication.
type Config struct {
	// Quick selects reduced sizes and seed counts (CI-friendly).
	Quick bool
	// Seeds is the number of independent runs per configuration point
	// (default 5, quick 3).
	Seeds int
	// BaseSeed offsets all seeds for reproducibility studies.
	BaseSeed uint64
	// Workers is the trial-engine worker count: 0 (the default) means
	// GOMAXPROCS, 1 forces sequential execution. Tables are byte-identical
	// for every value (internal/trials).
	Workers int
}

// seeds returns the effective number of seeds.
func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 3
	}
	return 5
}

// workers returns the effective trial-engine worker count.
func (c Config) workers() int { return trials.DefaultWorkers(c.Workers) }

// seedTrials fans count independent per-seed trials of one configuration
// point across the trial engine and returns the results in seed order. fn
// must derive all randomness deterministically from its seed index (plus
// cfg.BaseSeed), so tables do not depend on the worker count.
func seedTrials[T any](cfg Config, count int, fn func(s int) T) []T {
	return trials.Run(cfg.workers(), count, cfg.BaseSeed, func(s int, _ *rng.PRNG) T {
		return fn(s)
	})
}

// seedTimes is seedTrials for the common single-measurement shape: each
// trial yields one value or fails. It returns the successful measurements in
// seed order and the number of failed trials.
func seedTimes(cfg Config, count int, fn func(s int) (float64, bool)) (times []float64, misses int) {
	type outcome struct {
		took float64
		ok   bool
	}
	for _, o := range seedTrials(cfg, count, func(s int) outcome {
		took, ok := fn(s)
		return outcome{took: took, ok: ok}
	}) {
		if o.ok {
			times = append(times, o.took)
		} else {
			misses++
		}
	}
	return times, misses
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (T1…T16, F1, F2, A1…A4).
	ID string
	// Title is a one-line experiment description.
	Title string
	// Claim cites the paper statement being validated and the expected
	// shape of the measurement.
	Claim string
	// Header holds the column names.
	Header []string
	// Rows holds the measurements.
	Rows [][]string
	// Notes holds free-form observations appended during the run.
	Notes []string
}

// Append adds a row; the cell count should match the header.
func (t *Table) Append(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form observation.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Generator produces one experiment table.
type Generator func(Config) *Table

// All returns the registry of experiment generators keyed by ID.
func All() map[string]Generator {
	return map[string]Generator{
		"T1":      T1StabilizeFromReset,
		"F1":      F1TradeoffCurve,
		"F2":      F2ScalingInN,
		"T2":      T2StateComplexity,
		"T3":      T3AssignRanks,
		"T4":      T4FastLeaderElect,
		"T5":      T5Epidemic,
		"T6":      T6LoadBalance,
		"T7":      T7DetectionLatency,
		"T8":      T8Soundness,
		"T9":      T9SoftReset,
		"T10":     T10Recovery,
		"T11":     T11Baselines,
		"T12":     T12SyntheticCoin,
		"T13":     T13LooseLeader,
		"T14":     T14TransientFaults,
		"T15":     T15ObservedStates,
		"T16":     T16SchedulerRobustness,
		"A1":      A1SoftResetAblation,
		"A2":      A2ProbationAblation,
		"A3":      A3RefreshAblation,
		"A4":      A4LoadBalanceAblation,
		"S1":      S1SpeciesBackend,
		"S2":      S2TauLeapClock,
		"S3":      S3ElectLeaderSpecies,
		"S4":      S4ServeCache,
		"T-ring":  TRingTopology,
		"T-churn": TChurnWorkload,
	}
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(All()))
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		// F* after T1, numeric within prefix.
		ka, kb := idKey(a), idKey(b)
		return ka < kb
	})
	return ids
}

// idKey orders the experiments for presentation: T1, F1, F2, T2..T16, the
// ablations A1..A4, the scale experiments S1..S3, then the topology and
// churn experiments.
func idKey(id string) int {
	if id == "T-ring" {
		return 700 // topology experiment, after the scale experiments
	}
	if id == "T-churn" {
		return 710 // churn experiment, after the topology experiment
	}
	var n int
	fmt.Sscanf(id[1:], "%d", &n)
	switch id[0] {
	case 'T':
		if n == 1 {
			return 0
		}
		return n * 10
	case 'F':
		return n // F1 -> 1, F2 -> 2 (right after T1)
	case 'A':
		return 500 + n
	case 'S':
		return 600 + n // scale experiments, after the ablations
	}
	return 1000
}

// fmtU renders a uint64 with thousands separators.
func fmtU(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// fmtF renders a float with the given precision.
func fmtF(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}
