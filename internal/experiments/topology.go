// topology.go implements the interaction-topology experiment (T-ring): the
// paper's protocol and its related-work baselines are complete-graph
// protocols — the uniform scheduler over [n]² is baked into their
// correctness arguments — and the self-stabilizing literature is explicitly
// topology-sensitive (dedicated ring protocols exist because the complete-
// graph ones do not port, cf. arXiv:2009.10926). T-ring measures exactly
// that: stabilization of electleader/ciw/loosele on the complete graph, the
// ring, and a random 8-regular graph, across n, through the public
// Ensemble (one grid per topology × size so each gets a budget matching its
// expected scale).

package experiments

import (
	"fmt"

	"sspp"
)

// tringTopo pairs one experiment topology with its per-run interaction
// budget: a generous Θ(n²·parallel-time) envelope on the complete graph
// and the ring (where failure inside it is the measurement), and a Θ(n³)
// envelope on the random regular graph, where ElectLeader_r still
// stabilizes but pays a mixing-time blowup (observed up to ~5.6·10⁷
// interactions at n = 48). Budget rides with the topology so the two can
// never drift apart.
type tringTopo struct {
	top    sspp.Topology
	budget func(n int) uint64
}

// tringTopos returns the experiment's topology column in presentation
// order.
func tringTopos() []tringTopo {
	quadratic := func(n int) uint64 { return uint64(5000 * n * n) }
	cubic := func(n int) uint64 { return uint64(1000 * n * n * n) }
	return []tringTopo{
		{sspp.Complete(), quadratic},
		{sspp.Ring(), quadratic},
		{sspp.RandomRegular(8), cubic},
	}
}

// TRingTopology reproduces the topology sensitivity of complete-graph
// leader election: every protocol runs unchanged on each interaction graph,
// only the scheduler's edge set differs.
func TRingTopology(cfg Config) *Table {
	t := &Table{
		ID:    "T-ring",
		Title: "interaction topology: stabilization on complete vs ring vs random 8-regular graphs",
		Claim: "complete-graph protocols do not port to sparse topologies (cf. arXiv:2009.10926): " +
			"ElectLeader_r survives on an 8-regular expander with a mixing-time blowup, while the " +
			"ring defeats all three within a 5000·n parallel-time budget",
		Header: []string{"protocol", "topology", "n", "recovered", "mean interactions", "±95%", "blowup vs complete"},
	}
	ns := []int{16, 32, 48}
	if cfg.Quick {
		ns = []int{16, 24}
	}
	protos := []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW, sspp.ProtocolLooseLE}
	topos := tringTopos()

	// cells[protocol][topology name][n] — filled one Ensemble per
	// (topology, n) so every combination gets its own budget.
	cells := make(map[string]map[string]map[int]sspp.Cell)
	for _, p := range protos {
		cells[p] = make(map[string]map[int]sspp.Cell)
		for _, tt := range topos {
			cells[p][tt.top.Name()] = make(map[int]sspp.Cell)
		}
	}
	for _, tt := range topos {
		for _, n := range ns {
			ens, err := sspp.NewEnsemble(sspp.Grid{
				Protocols:       protos,
				Topologies:      []sspp.Topology{tt.top},
				Points:          []sspp.Point{{N: n, R: maxInt(1, n/4)}},
				Seeds:           cfg.seeds(),
				BaseSeed:        cfg.BaseSeed,
				MaxInteractions: tt.budget(n),
			}, sspp.Workers(cfg.Workers))
			if err != nil {
				t.Note("grid (topology=%s, n=%d) rejected: %v", tt.top.Name(), n, err)
				continue
			}
			for _, cell := range ens.Run().Cells {
				cells[cell.Protocol][cell.Topology][cell.Point.N] = cell
			}
		}
	}

	completeName := sspp.Complete().Name()
	for _, p := range protos {
		for _, tt := range topos {
			for _, n := range ns {
				cell, ok := cells[p][tt.top.Name()][n]
				if !ok {
					continue
				}
				mean, ci, blowup := "-", "-", "-"
				if cell.Recovered > 0 {
					mean = fmtU(uint64(cell.Interactions.Mean))
					ci = fmtU(uint64(cell.Interactions.CI95))
					if base, ok := cells[p][completeName][n]; ok && base.Recovered > 0 {
						blowup = fmt.Sprintf("%.1f×", cell.Interactions.Mean/base.Interactions.Mean)
					}
				} else {
					blowup = fmt.Sprintf("∞ (>%s budget)", fmtU(tt.budget(n)))
				}
				t.Append(p, tt.top.Name(), itoa(n),
					itoa(cell.Recovered)+"/"+itoa(cell.Seeds), mean, ci, blowup)
			}
		}
	}
	t.Note("every run uses the protocol's stabilization notion (safe set, or confirmed output for " +
		"loosele); a 0/k row means no trial stabilized within the budget — CIW's equal-rank collisions " +
		"and LooseLE's leader-meets-leader demotion structurally require adjacency the sparse graphs " +
		"do not provide")
	t.Note("budgets: 5000·n² interactions on complete and ring, 1000·n³ on random-regular(8)")
	return t
}
