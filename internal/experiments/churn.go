// churn.go implements the churn experiment (T-churn): the paper pitches
// self-stabilization as robustness to arbitrary disruption, and the natural
// ongoing-disruption regime is population churn — agents leaving and fresh
// ones joining mid-run. T-churn measures re-stabilization of
// electleader/ciw/loosele under Poisson replacement churn (every leave paired
// with a join at the same instant, the fixed-capacity model and the only
// churn shape ElectLeader_r's ranked population admits) at increasing rates,
// through the public Ensemble workload mode: each trial stabilizes first,
// absorbs the whole schedule, and reports both the final re-stabilization
// time and the per-event recovery statistics.

package experiments

import (
	"fmt"

	"sspp"
)

// tchurnRates returns the experiment's churn-rate column: expected
// replacement events per unit of parallel time (n interactions).
func tchurnRates() []float64 { return []float64{0.5, 2} }

// TChurnWorkload reproduces recovery under ongoing churn: a Poisson
// replacement process strikes the stabilized population for 20 units of
// parallel time, and every protocol must re-stabilize after the last event.
func TChurnWorkload(cfg Config) *Table {
	t := &Table{
		ID:    "T-churn",
		Title: "population churn: re-stabilization under Poisson replacement workloads",
		Claim: "self-stabilization extends from one-shot faults to ongoing churn: every protocol " +
			"re-stabilizes after a 20-parallel-time Poisson replacement storm, with per-event " +
			"recovery tracking the protocol's stabilization time",
		Header: []string{"protocol", "n", "rate/pt", "recovered", "mean re-stab interactions", "±95%", "events fired", "mean per-event recovery"},
	}
	ns := []int{16, 32}
	if cfg.Quick {
		ns = []int{16}
	}
	protos := []string{sspp.ProtocolElectLeader, sspp.ProtocolCIW, sspp.ProtocolLooseLE}
	for _, n := range ns {
		for _, rate := range tchurnRates() {
			// The same workload seed per (n, rate) gives every protocol the
			// identical replacement schedule — the comparison is between
			// protocols, not between schedule draws.
			wl := sspp.NewWorkload(sspp.ReplacementChurn(0, uint64(20*n), rate, "", 97))
			ens, err := sspp.NewEnsemble(sspp.Grid{
				Protocols:       protos,
				Points:          []sspp.Point{{N: n, R: maxInt(1, n/4)}},
				Seeds:           cfg.seeds(),
				BaseSeed:        cfg.BaseSeed,
				MaxInteractions: uint64(5000 * n * n),
				Workload:        wl,
			}, sspp.Workers(cfg.Workers))
			if err != nil {
				t.Note("grid (n=%d, rate=%.1f) rejected: %v", n, rate, err)
				continue
			}
			for _, cell := range ens.Run().Cells {
				fired, recovered := 0, 0
				var recSum float64
				var recN int
				for _, ec := range cell.Events {
					fired += ec.Fired
					recovered += ec.Recovered
					recSum += ec.Recovery.Mean * float64(ec.Recovery.N)
					recN += ec.Recovery.N
				}
				mean, ci := "-", "-"
				if cell.Recovered > 0 {
					mean = fmtU(uint64(cell.Interactions.Mean))
					ci = fmtU(uint64(cell.Interactions.CI95))
				}
				perEvent := "-"
				if recN > 0 {
					perEvent = fmtU(uint64(recSum / float64(recN)))
				}
				t.Append(cell.Protocol, itoa(n), fmtF(rate, 1),
					itoa(cell.Recovered)+"/"+itoa(cell.Seeds), mean, ci,
					fmt.Sprintf("%d/%d", fired, len(cell.Events)*cell.Seeds), perEvent)
			}
		}
	}
	t.Note("replacement churn keeps n constant (each leave paired with a join at the same instant) — " +
		"the only churn shape electleader's ranked population admits; ciw and loosele also absorb " +
		"dynamic-n churn (see DESIGN.md §10)")
	t.Note("per-event recovery is the interaction count from an event's firing to the first poll at " +
		"which the stop condition held again, averaged over events and seeds")
	return t
}
