// observed.go implements experiment T15: the empirical complement to the
// state-complexity table T2. Theorem 1.1 prices the protocol's speed in a
// 2^O(r²·log n) state space; this experiment counts how many *distinct*
// agent states one execution actually visits. The gap — a few thousand
// states observed against thousands of bits of capacity — illustrates what
// the state space buys: not states that are ever simultaneously live, but
// addressability (unique message IDs, signatures, timers) that makes
// collisions detectable.

package experiments

import (
	"math"

	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
)

// T15ObservedStates counts distinct full agent states over complete
// stabilization runs, per (n, r), against the Figure 1 capacity.
func T15ObservedStates(cfg Config) *Table {
	t := &Table{
		ID:    "T15",
		Title: "observed state-space usage over a full stabilization run",
		Claim: "the 2^O(r²·log n) capacity (Thm 1.1) is addressability, not occupancy: " +
			"a run visits a vanishing fraction of it",
		Header: []string{"n", "r", "interactions", "distinct agent states", "log₂(distinct)", "capacity bits (Fig.1)"},
	}
	cases := []struct{ n, r int }{{16, 2}, {16, 4}, {16, 8}}
	if !cfg.Quick {
		cases = append(cases, []struct{ n, r int }{{32, 4}, {32, 8}}...)
	}
	for _, c := range cases {
		seed := cfg.BaseSeed + 1
		p, err := core.New(c.n, c.r, core.WithSeed(seed))
		if err != nil {
			continue
		}
		if err := adversary.Apply(p, adversary.ClassTriggered, rng.New(seed+1)); err != nil {
			continue
		}
		distinct := make(map[string]struct{}, 1<<16)
		var buf []byte
		record := func(i int) {
			buf = p.AgentKey(i, buf[:0])
			distinct[string(buf)] = struct{}{}
		}
		for i := 0; i < c.n; i++ {
			record(i)
		}
		sched := rng.New(seed + 2)
		budget := safeSetBudget(c.n, c.r)
		var took uint64
		for took < budget {
			a, b := sched.Pair(c.n)
			p.Interact(a, b)
			record(a)
			record(b)
			took++
			if took%uint64(c.n) == 0 && p.InSafeSet() {
				break
			}
		}
		bits := core.ElectLeaderBits(float64(c.n), float64(c.r))
		t.Append(itoa(c.n), itoa(c.r), fmtU(took), fmtU(uint64(len(distinct))),
			fmtF(math.Log2(float64(len(distinct))), 1), fmtU(uint64(bits)))
	}
	t.Note("every timer tick, message move and signature refresh counts as a new state, " +
		"so 'distinct states' exceeds interactions÷n but stays astronomically below capacity")
	return t
}
