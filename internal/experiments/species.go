// species.go implements experiment S1: the large-n throughput table of the
// species backend. The agent backend stores one struct per agent and pays
// O(1)-per-interaction on tiny states but cannot shrink its per-interaction
// constant below touching agent memory; the species backend
// (internal/species) stores state counts, samples interactions from an
// incrementally maintained alias table, and — for diagonal protocols like
// CIW — skips entire silent runs in one geometric draw. S1 measures both
// backends driving the same protocols at n ∈ {10⁵, 10⁶, 10⁷}, the regime
// the ROADMAP's scale goal calls for. Statistical equivalence of the two
// backends is enforced separately (internal/species/equiv_test.go and the
// nightly soak job); this table records the cost side of the trade.

package experiments

import (
	"fmt"
	"time"

	"sspp/internal/baseline"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/species"
)

// s1Sizes are the S1 population sizes (the ISSUE-4 columns).
var s1Sizes = []int{100_000, 1_000_000, 10_000_000}

// s1Protocol describes one S1 protocol: an agent-level constructor and a
// function counting its occupied (distinct) states, for the cost columns.
type s1Protocol struct {
	name  string
	build func(n int) sim.Protocol
	// occupied counts the distinct agent states of the agent-level instance
	// (the species backend tracks this natively).
	occupied func(p sim.Protocol) int
}

// ciwOccupied counts the distinct ranks of an agent-level CIW instance.
func ciwOccupied(p sim.Protocol) int {
	c := p.(*baseline.CIW)
	seen := make(map[int32]struct{})
	for i := 0; i < c.N(); i++ {
		seen[c.Rank(i)] = struct{}{}
	}
	return len(seen)
}

// s1Protocols are the compactable protocols S1 sweeps. CIW exercises the
// diagonal silent-skip fast path; LooseLE exercises the every-interaction
// ReactAll path with a state space bounded by 2(τ+1).
func s1Protocols() []s1Protocol {
	return []s1Protocol{
		{
			name:     "ciw",
			build:    func(n int) sim.Protocol { return baseline.NewCIW(n) },
			occupied: ciwOccupied,
		},
		{
			// CIW a few faults away from its silent permutation: the regime
			// every self-stabilizing run spends most wall-clock time in, and
			// where the geometric silent-skip collapses whole runs of
			// interactions into one draw.
			name: "ciw-late",
			build: func(n int) sim.Protocol {
				ranks := make([]int32, n)
				for i := range ranks {
					ranks[i] = int32(i + 1)
				}
				for i := 0; i < 4 && i+1 < n; i++ {
					ranks[i] = ranks[i+1] // a handful of duplicate ranks
				}
				return baseline.NewCIWFromRanks(ranks)
			},
			occupied: ciwOccupied,
		},
		{
			name: "loosele",
			build: func(n int) sim.Protocol {
				return baseline.NewLooseLE(n, 48)
			},
			occupied: func(p sim.Protocol) int {
				l := p.(*baseline.LooseLE)
				seen := make(map[uint64]struct{})
				for i := 0; i < l.N(); i++ {
					seen[l.StateKey(i)] = struct{}{}
				}
				return len(seen)
			},
		},
	}
}

// S1SpeciesBackend measures agent-vs-species throughput per protocol and
// population size.
func S1SpeciesBackend(cfg Config) *Table {
	t := &Table{
		ID:    "S1",
		Title: "species backend throughput at n = 1e5..1e7 (agent vs state-count simulation)",
		Claim: "per-interaction cost of the species backend depends on occupied states, not n; " +
			"backend equivalence is gated statistically in internal/species (KS/Mann-Whitney, 200 paired trials)",
		Header: []string{"protocol", "n", "backend", "interactions", "elapsed", "M int/s", "occupied", "speedup"},
	}
	perAgent := uint64(10)
	if cfg.Quick {
		perAgent = 2
	}
	for _, proto := range s1Protocols() {
		for _, n := range s1Sizes {
			budget := perAgent * uint64(n)
			var agentElapsed time.Duration
			for _, backend := range []string{"agent", "species"} {
				src := rng.New(cfg.BaseSeed + 17)
				var p sim.Protocol
				agent := proto.build(n)
				if backend == "species" {
					comp, ok := sim.AsCompactable(agent)
					if !ok {
						panic("species benchmark protocol must be Compactable")
					}
					sp, err := species.NewSystem(comp.Compact(), 1)
					if err != nil {
						t.Note("%s n=%d: %v", proto.name, n, err)
						continue
					}
					p = sp
				} else {
					p = agent
				}
				start := time.Now() //sspp:allow rngdiscipline -- backend speedup is a wall-clock measurement by design
				sim.Steps(p, src, budget)
				elapsed := time.Since(start) //sspp:allow rngdiscipline -- backend speedup is a wall-clock measurement by design
				occ := 0
				speedup := ""
				if sp, ok := p.(*species.System); ok {
					occ = sp.Occupied()
					if elapsed > 0 && agentElapsed > 0 {
						speedup = fmt.Sprintf("%.1fx", float64(agentElapsed)/float64(elapsed))
					}
				} else {
					occ = proto.occupied(p)
					agentElapsed = elapsed
				}
				rate := float64(budget) / elapsed.Seconds() / 1e6
				t.Append(proto.name, fmtU(uint64(n)), backend, fmtU(budget),
					elapsed.Round(time.Millisecond).String(), fmtF(rate, 1), fmtU(uint64(occ)), speedup)
			}
		}
	}
	t.Note("budget is %d interactions per agent per row (quick mode shrinks it); the speedup column is agent/species wall time", perAgent)
	t.Note("CIW uses the diagonal silent-skip fast path (reactive interactions only); LooseLE samples every interaction from <= 2(tau+1) occupied states")
	return t
}
