// comparisons.go implements the comparison experiments: ElectLeader_r vs the
// n-state CIW baseline (T11), the synthetic coin of Appendix B (T12), and
// the loosely-stabilizing extension (T13).

package experiments

import (
	"math"

	"sspp"
	"sspp/internal/adversary"
	"sspp/internal/baseline"
	"sspp/internal/coin"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
)

// T11Baselines compares end-to-end stabilization of ElectLeader_r against
// the n-state CIW protocol: the paper's protocol pays states to gain speed,
// CIW pays Θ(n²)+ time to stay at n states. Both are measured from their
// worst-ish uniform starts.
func T11Baselines(cfg Config) *Table {
	t := &Table{
		ID:    "T11",
		Title: "end-to-end comparison: ElectLeader_r vs the n-state CIW baseline",
		Claim: "§2: CIW stabilizes in Θ(n²)+ expected interactions with n states; " +
			"ElectLeader_r(r=n/4) in O(n·log n)-shaped time with 2^O(n²·log n) states",
		Header: []string{"protocol", "n", "mean interactions", "±95%", "parallel time", "state bits"},
	}
	ns := []int{32, 64}
	if !cfg.Quick {
		ns = []int{64, 128, 256, 512}
	}
	var cCIW, cEL stats.Acc // fitted constants of c·n² and c·n·ln n
	for _, n := range ns {
		// CIW from the all-rank-1 start, measured to output stability.
		results := seedTrials(cfg, cfg.seeds(), func(s int) float64 {
			c := baseline.NewCIW(n)
			res := sim.Run(c, rng.New(cfg.BaseSeed+uint64(s)), sim.Options{
				MaxInteractions:    uint64(2000 * n * n),
				StopAfterStableFor: uint64(20 * n * n),
			})
			if !res.Stabilized {
				return -1
			}
			return float64(res.StabilizedAt)
		})
		var ciw stats.Acc
		for _, took := range results {
			if took >= 0 {
				ciw.Add(took)
			}
		}
		cCIW.Add(ciw.Mean() / float64(n*n))
		t.Append("CIW (n states)", itoa(n), fmtU(uint64(ciw.Mean())), fmtU(uint64(ciw.CI95())),
			fmtF(ciw.Mean()/float64(n), 1), fmtF(core.CaiIzumiWadaBits(float64(n)), 1))

		// ElectLeader_r at r = n/4 from a triggered configuration.
		r := maxInt(1, n/4)
		times, _ := measureSafeSet(cfg, n, r, adversary.ClassTriggered)
		if len(times) > 0 {
			s := stats.Summarize(times)
			cEL.Add(s.Mean / (float64(n) * math.Log(float64(n))))
			t.Append("ElectLeader(r=n/4)", itoa(n), fmtU(uint64(s.Mean)), fmtU(uint64(s.CI95)),
				fmtF(s.Mean/float64(n), 1), fmtU(uint64(core.ElectLeaderBits(float64(n), float64(r)))))
		}
	}
	t.Note("CIW measured to stable output from the all-rank-1 start; ElectLeader to safe set " +
		"from a triggered configuration (its stricter notion)")
	if cCIW.N() > 0 && cEL.N() > 0 {
		t.Note("fitted shapes: CIW ≈ %.2f·n² interactions; ElectLeader(r=n/4) ≈ %.0f·n·ln n interactions",
			cCIW.Mean(), cEL.Mean())
		t.Note("implied crossover (CIW slower beyond): n* ≈ %s", fmtU(uint64(crossover(cCIW.Mean(), cEL.Mean()))))
	}
	return t
}

// crossover solves cCIW·n² = cEL·n·ln n for n by fixed-point iteration.
func crossover(cCIW, cEL float64) float64 {
	n := 100.0
	for i := 0; i < 60; i++ {
		n = cEL / cCIW * math.Log(n)
	}
	return n
}

// T12SyntheticCoin validates Lemma B.1 (T12a: per-value sampling probability
// within [1/(2N), 2/N]) and runs ElectLeader_r fully derandomized (T12b).
func T12SyntheticCoin(cfg Config) *Table {
	t := &Table{
		ID:    "T12",
		Title: "synthetic coin (Appendix B): sampling quality and end-to-end run",
		Claim: "Lemma B.1: every value sampled with probability in [1/(2N), 2/N] after mixing; " +
			"derandomized ElectLeader_r stabilizes like the PRNG mode",
		Header: []string{"measurement", "value"},
	}
	// Part a: sampling census over a mixing population.
	const (
		n     = 64
		space = 16
	)
	r := rng.New(cfg.BaseSeed + 1)
	agents := make([]coin.State, n)
	for i := range agents {
		agents[i] = coin.NewState(coin.WidthFor(space), uint64(i))
	}
	mix := func(k int) {
		for i := 0; i < k; i++ {
			a, b := r.Pair(n)
			coin.Observe(&agents[a], &agents[b])
		}
	}
	mix(50 * n)
	rounds := 2000 * cfg.seeds()
	counts := make([]int, space)
	for i := 0; i < rounds; i++ {
		mix(2 * n * int(agents[0].Width))
		counts[agents[r.Intn(n)].Sample(space)]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts[1:] {
		minC = minInt(minC, c)
		maxC = maxInt(maxC, c)
	}
	uniform := float64(rounds) / float64(space)
	t.Append("sample space N", itoa(space))
	t.Append("samples", itoa(rounds))
	t.Append("min P[x]·N", fmtF(float64(minC)/uniform, 3))
	t.Append("max P[x]·N", fmtF(float64(maxC)/uniform, 3))
	t.Append("Lemma B.1 band for P[x]·N", "[0.5, 2.0]")

	// Part b: end-to-end derandomized run.
	const en, er = 24, 6
	type modePair struct {
		prng, synth float64 // -1 when the mode did not stabilize
	}
	pairs := seedTrials(cfg, cfg.seeds(), func(s int) modePair {
		seed := cfg.BaseSeed + uint64(s)
		out := modePair{prng: -1, synth: -1}
		for _, mode := range []bool{false, true} {
			opts := []core.Option{core.WithSeed(seed)}
			if mode {
				opts = append(opts, core.WithSyntheticCoins())
			}
			p, err := core.New(en, er, opts...)
			if err != nil {
				continue
			}
			took, ok := p.RunToSafeSet(rng.New(seed+9), safeSetBudget(en, er))
			if !ok {
				continue
			}
			if mode {
				out.synth = float64(took)
			} else {
				out.prng = float64(took)
			}
		}
		return out
	})
	var prng, synth stats.Acc
	for _, pair := range pairs {
		if pair.prng >= 0 {
			prng.Add(pair.prng)
		}
		if pair.synth >= 0 {
			synth.Add(pair.synth)
		}
	}
	t.Append("ElectLeader(24,6) PRNG mode: mean safe-set time", fmtU(uint64(prng.Mean())))
	t.Append("ElectLeader(24,6) synthetic mode: mean safe-set time", fmtU(uint64(synth.Mean())))
	t.Append("synthetic successes", itoa(synth.N())+"/"+itoa(cfg.seeds()))
	t.Note("identical timings across modes are expected: safe-set arrival is dominated by the " +
		"deterministic countdown under a shared scheduler stream; the modes differ in the " +
		"drawn identifiers/signatures, i.e. in *which* ranking is produced")
	return t
}

// T13LooseLeader reproduces the loose-stabilization trade-off of the related
// work ([29, 30]): larger timeouts τ lengthen the leader's holding time at
// the cost of slower convergence; τ below the epidemic time cannot hold a
// leader at all. Convergence runs through the generalized cross-protocol
// Ensemble (protocol "loosele", whose missing safe-set capability makes the
// engine measure confirmed correct output — exactly the loose-stabilization
// notion); the holding fraction is measured by follow-up runs through the
// same public engine.
func T13LooseLeader(cfg Config) *Table {
	const n = 64
	t := &Table{
		ID:    "T13",
		Title: "loosely-stabilizing leader election: convergence vs holding",
		Claim: "[29,30]: below the heartbeat-epidemic scale (τ = O(log n)) the leader churns; " +
			"above it the leader is held long — but only for a finite time, unlike Thm 1.1",
		Header: []string{"τ/ln(n)", "τ", "converged runs", "mean convergence", "held fraction"},
	}
	// The timer ticks on an agent's own interactions, and the leader's
	// heartbeat epidemic needs Θ(log n) of them to arrive, so the
	// interesting τ scale is Θ(log n) — not Θ(n·log n).
	ln := math.Log(float64(n))
	budget := uint64(200 * float64(n) * ln)
	confirm := uint64(4 * n)
	for _, factor := range []float64{0.5, 1, 4, 16} {
		tau := int32(factor * ln)
		ens, err := sspp.NewEnsemble(sspp.Grid{
			Protocols:       []string{sspp.ProtocolLooseLE},
			Points:          []sspp.Point{{N: n}},
			Seeds:           cfg.seeds(),
			BaseSeed:        cfg.BaseSeed,
			MaxInteractions: budget,
			Confirm:         confirm,
			Tau:             tau,
		}, sspp.Workers(cfg.Workers))
		if err != nil {
			t.Note("τ=%d grid rejected: %v", tau, err)
			continue
		}
		cell := ens.Run().Cells[0]
		// Holding fraction over a follow-up window: converge first (same run
		// shape as the Ensemble trials), then poll the output while the
		// scheduler stream continues. The extra convergence run per seed is
		// deliberate: the Ensemble owns the convergence measurement and does
		// not expose live systems, and a T13 trial is ~200·n·ln n
		// interactions — cheap enough to repeat for a clean separation.
		type holding struct{ held, polls float64 }
		results := seedTrials(cfg, cfg.seeds(), func(s int) holding {
			sys, err := sspp.New(sspp.Config{Protocol: sspp.ProtocolLooseLE, N: n, Tau: tau,
				Seed: cfg.BaseSeed + uint64(s)})
			if err != nil {
				return holding{}
			}
			sched := sspp.NewUniform(cfg.BaseSeed + uint64(s)*31 + 7)
			sys.Run(sspp.WithScheduler(sched), sspp.MaxInteractions(budget),
				sspp.Confirm(confirm))
			out := holding{}
			for i := 0; i < 200; i++ {
				sys.StepSched(sched, uint64(n))
				out.polls++
				if sys.Correct() {
					out.held++
				}
			}
			return out
		})
		held, polls := 0.0, 0.0
		for _, o := range results {
			held += o.held
			polls += o.polls
		}
		convStr := "-"
		if cell.Recovered > 0 {
			convStr = fmtU(uint64(cell.Interactions.Mean))
		}
		t.Append(fmtF(factor, 2), fmtU(uint64(tau)), itoa(cell.Recovered)+"/"+itoa(cfg.seeds()),
			convStr, fmtF(held/polls, 3))
	}
	t.Note("convergence measured through the cross-protocol Ensemble (loosele runs under the " +
		"safe-set fallback: correct output confirmed for 4·n interactions)")
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
