// modules.go implements the per-module experiments: state complexity (T2),
// AssignRanks_r (T3), FastLeaderElect (T4), epidemics (T5), and load
// balancing (T6).

package experiments

import (
	"math"

	"sspp/internal/coin"
	"sspp/internal/core"
	"sspp/internal/epidemic"
	"sspp/internal/loadbalance"
	"sspp/internal/ranking"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
)

// T2StateComplexity tabulates the bit complexity (log₂ of state count) of
// ElectLeader_r across the trade-off against the baselines of Section 2,
// using the Figure 1–4 formulas (internal/core/statespace.go).
func T2StateComplexity(cfg Config) *Table {
	t := &Table{
		ID:    "T2",
		Title: "state complexity across the trade-off (bits = log₂ |Q|)",
		Claim: "Thm 1.1: 2^O(r²·log n) states vs [16]'s super-polynomial bits in the " +
			"time-optimal regime; time bound O((n²/r)·log n)",
		Header: []string{"n", "r", "ElectLeader_r bits", "time bound (interactions)", "CIW bits", "Gąsieniec bits", "Burman'21 bits (time-opt)"},
	}
	ns := []float64{256, 1024, 4096}
	if !cfg.Quick {
		ns = []float64{256, 1024, 4096, 16384, 65536}
	}
	for _, n := range ns {
		logN := math.Log2(n)
		seen := map[uint64]bool{}
		for _, r := range []float64{1, logN, logN * logN, n / 4, n / 2} {
			if r < 1 || r > n/2 || seen[uint64(r)] {
				continue
			}
			seen[uint64(r)] = true
			timeBound := n * n / r * math.Log(n)
			t.Append(
				fmtU(uint64(n)), fmtU(uint64(r)),
				fmtU(uint64(core.ElectLeaderBits(n, r))),
				fmtF(timeBound, 0),
				fmtF(core.CaiIzumiWadaBits(n), 1),
				fmtF(core.GasieniecBits(n), 1),
				sciBits(core.BurmanBits(n)),
			)
		}
	}
	t.Note("bit columns are log₂ of the state-space size; Burman'21 column is the " +
		"H=Θ(log n) (time-optimal) instantiation of Sublinear-Time-SSR")
	t.Note("headline: at r=Θ(n) the paper's protocol needs Θ(n²·log n) bits where [16] needs n^Θ(log n)")
	return t
}

// sciBits renders astronomically large bit counts in scientific notation.
func sciBits(bits float64) string {
	if bits < 1e6 {
		return fmtU(uint64(bits))
	}
	exp := int(math.Floor(math.Log10(bits)))
	return fmtF(bits/math.Pow(10, float64(exp)), 2) + "e" + itoa(exp)
}

// T3AssignRanks validates Lemma D.1: AssignRanks_r ranks the population from
// a clean start within c·(n²/r)·log n interactions and is silent afterwards.
func T3AssignRanks(cfg Config) *Table {
	t := &Table{
		ID:    "T3",
		Title: "AssignRanks_r: ranking time from a clean start",
		Claim: "Lemma D.1: unique ranks within O((n²/r)·log n) interactions w.h.p.; " +
			"normalized column ≈ flat",
		Header: []string{"n", "r", "mean interactions", "±95%", "norm (n²/r·ln n)", "fails"},
	}
	ns := []int{32, 64}
	if !cfg.Quick {
		ns = []int{32, 64, 128}
	}
	for _, n := range ns {
		for _, r := range regimesFor(n) {
			var times []float64
			fails := 0
			for s := 0; s < cfg.seeds(); s++ {
				seed := cfg.BaseSeed + uint64(s)
				pr, err := ranking.NewProtocol(n, r, rng.New(seed))
				if err != nil {
					fails++
					continue
				}
				res := sim.Run(pr, rng.New(seed+21), sim.Options{
					MaxInteractions:    safeSetBudget(n, r),
					StopAfterStableFor: uint64(4 * n),
				})
				if !res.Stabilized {
					fails++
					continue
				}
				times = append(times, float64(res.StabilizedAt))
			}
			if len(times) == 0 {
				t.Append(itoa(n), itoa(r), "-", "-", "-", itoa(fails))
				continue
			}
			s := stats.Summarize(times)
			norm := s.Mean / (float64(n*n) / float64(r) * math.Log(float64(n)))
			t.Append(itoa(n), itoa(r), fmtU(uint64(s.Mean)), fmtU(uint64(s.CI95)),
				fmtF(norm, 2), itoa(fails))
		}
	}
	return t
}

// T4FastLeaderElect validates Lemma D.10: FastLeaderElect concludes with a
// unique leader within O(n·log n) interactions w.h.p.
func T4FastLeaderElect(cfg Config) *Table {
	t := &Table{
		ID:    "T4",
		Title: "FastLeaderElect: election time and uniqueness",
		Claim: "Lemma D.10: unique leader in O(log n) parallel time w.h.p.; " +
			"norm = interactions/(n·ln n) ≈ flat",
		Header: []string{"n", "mean interactions", "norm (n·ln n)", "unique-leader runs"},
	}
	ns := []int{64, 128, 256}
	if !cfg.Quick {
		ns = []int{64, 128, 256, 512, 1024}
	}
	for _, n := range ns {
		var times []float64
		unique := 0
		for s := 0; s < cfg.seeds(); s++ {
			seed := cfg.BaseSeed + uint64(s)
			f := ranking.NewFastLE(n, coin.FromPRNG(rng.New(seed)))
			res := sim.Run(f, rng.New(seed+31), sim.Options{
				MaxInteractions:    uint64(400 * float64(n) * math.Log(float64(n))),
				StopAfterStableFor: uint64(4 * n),
			})
			if res.Stabilized {
				unique++
				times = append(times, float64(res.StabilizedAt))
			}
		}
		if len(times) == 0 {
			t.Append(itoa(n), "-", "-", "0/"+itoa(cfg.seeds()))
			continue
		}
		s := stats.Summarize(times)
		t.Append(itoa(n), fmtU(uint64(s.Mean)),
			fmtF(s.Mean/(float64(n)*math.Log(float64(n))), 2),
			itoa(unique)+"/"+itoa(cfg.seeds()))
	}
	return t
}

// T5Epidemic validates Lemma A.2: epidemics complete within c_epi·n·log n
// interactions with c_epi < 7 (for the one-way worst case the constant in
// the w.h.p. statement; the mean sits well below).
func T5Epidemic(cfg Config) *Table {
	t := &Table{
		ID:     "T5",
		Title:  "epidemic completion time",
		Claim:  "Lemma A.2: completion within c_epi·n·log n interactions, c_epi < 7",
		Header: []string{"mode", "n", "mean interactions", "max", "mean/(n·ln n)", "max/(n·ln n)"},
	}
	ns := []int{128, 256, 512}
	if !cfg.Quick {
		ns = []int{128, 256, 512, 1024, 2048}
	}
	for _, twoWay := range []bool{false, true} {
		mode := "one-way"
		if twoWay {
			mode = "two-way"
		}
		for _, n := range ns {
			var acc stats.Acc
			for s := 0; s < 4*cfg.seeds(); s++ {
				r := rng.New(cfg.BaseSeed + uint64(s))
				acc.Add(float64(epidemic.CompletionTime(n, r, twoWay)))
			}
			norm := float64(n) * math.Log(float64(n))
			t.Append(mode, itoa(n), fmtU(uint64(acc.Mean())), fmtU(uint64(acc.Max())),
				fmtF(acc.Mean()/norm, 2), fmtF(acc.Max()/norm, 2))
		}
	}
	return t
}

// T6LoadBalance validates the Lemma E.6 substrate ([9] Theorem 1): from a
// point mass of 2n tokens the discrepancy drops to O(1) within O(n·log n)
// interactions.
func T6LoadBalance(cfg Config) *Table {
	t := &Table{
		ID:     "T6",
		Title:  "token load balancing: time to discrepancy ≤ 3 from a point mass of 2n",
		Claim:  "Lemma E.6 / [9] Thm 1: O(n·log n) interactions; norm ≈ flat",
		Header: []string{"n", "mean interactions", "max", "mean/(n·ln n)", "unreached"},
	}
	ns := []int{128, 256, 512}
	if !cfg.Quick {
		ns = []int{128, 256, 512, 1024, 2048}
	}
	for _, n := range ns {
		var acc stats.Acc
		unreached := 0
		for s := 0; s < 2*cfg.seeds(); s++ {
			p := loadbalance.NewPointMass(n, int64(2*n))
			took, ok := loadbalance.RunUntilDiscrepancy(p, rng.New(cfg.BaseSeed+uint64(s)), 3,
				uint64(200*float64(n)*math.Log(float64(n))))
			if !ok {
				unreached++
				continue
			}
			acc.Add(float64(took))
		}
		norm := float64(n) * math.Log(float64(n))
		t.Append(itoa(n), fmtU(uint64(acc.Mean())), fmtU(uint64(acc.Max())),
			fmtF(acc.Mean()/norm, 2), itoa(unreached))
	}
	return t
}
