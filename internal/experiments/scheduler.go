// scheduler.go implements experiment T16: robustness to non-uniform
// schedulers. The paper's guarantees (Theorem 1.1) are proved for the
// uniform scheduler; real deployments (chemical mixtures, duty-cycled
// sensors) have heterogeneous contact rates. The experiment runs
// ElectLeader_r under Zipf-weighted endpoint selection and measures how
// gracefully stabilization degrades — an extension beyond the paper,
// labelled as such.

package experiments

import (
	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/stats"
)

// T16SchedulerRobustness measures safe-set arrival under increasingly
// skewed interaction-rate distributions.
func T16SchedulerRobustness(cfg Config) *Table {
	const n, r = 32, 8
	t := &Table{
		ID:    "T16",
		Title: "scheduler robustness: stabilization under Zipf-weighted contact rates",
		Claim: "extension beyond the paper (Thm 1.1 assumes the uniform scheduler): " +
			"probe how stabilization degrades as contact rates skew " +
			"(n=32, r=8, weights w_i ∝ 1/i^s)",
		Header: []string{"Zipf s", "recovered", "mean safe-set time", "±95%", "slowdown vs uniform"},
	}
	var uniform float64
	for _, s := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		measured, _ := seedTimes(cfg, cfg.seeds(), func(seed int) (float64, bool) {
			sd := cfg.BaseSeed + uint64(seed)*13
			p, err := core.New(n, r, core.WithSeed(sd))
			if err != nil {
				return 0, false
			}
			if err := adversary.Apply(p, adversary.ClassTriggered, rng.New(sd+1)); err != nil {
				return 0, false
			}
			var sched sim.Scheduler = rng.New(sd + 2)
			if s > 0 {
				sched = sim.NewZipf(rng.New(sd+2), n, s)
			}
			took, ok := p.RunToSafeSetSched(sched, 8*safeSetBudget(n, r))
			return float64(took), ok
		})
		var times stats.Acc
		for _, took := range measured {
			times.Add(took)
		}
		recovered := len(measured)
		if times.N() == 0 {
			t.Append(fmtF(s, 2), "0/"+itoa(cfg.seeds()), "-", "-", "-")
			continue
		}
		if s == 0 {
			uniform = times.Mean()
		}
		slow := "-"
		if uniform > 0 {
			slow = fmtF(times.Mean()/uniform, 2)
		}
		t.Append(fmtF(s, 2), itoa(recovered)+"/"+itoa(cfg.seeds()),
			fmtU(uint64(times.Mean())), fmtU(uint64(times.CI95())), slow)
	}
	t.Note("s = 0 is the paper's model; at s = 1 the busiest agent interacts ≈ n/H_n ≈ 8× " +
		"more often than the quietest")
	t.Note("the response is non-monotone: mild skew is FASTER because the busiest ranker's " +
		"countdown expires early and pulls the population into verification by epidemic, " +
		"while ranking still completes in time; heavy skew starves the quietest agents of " +
		"labels, so early verifiers meet an unfinished ranking and trigger reset cycles " +
		"(large variance) — the constants of Thm 1.1 genuinely rely on uniform mixing")
	return t
}
