package detect

import (
	"testing"

	"sspp/internal/rng"
)

// FuzzPartition checks the structural partition invariants for arbitrary
// (n, r): disjoint contiguous cover of [1, n] with consistent accessors.
// Run with `go test -fuzz FuzzPartition ./internal/detect` to explore;
// the seed corpus runs as a normal test.
func FuzzPartition(f *testing.F) {
	f.Add(10, 3)
	f.Add(1, 1)
	f.Add(1000, 999)
	f.Add(7, 7)
	f.Add(64, 1)
	f.Fuzz(func(t *testing.T, n, r int) {
		if n < 1 || n > 5000 {
			t.Skip()
		}
		pt := NewPartition(n, r)
		covered := 0
		for g := int32(0); g < int32(pt.NumGroups()); g++ {
			size := pt.GroupSize(g)
			if size < 1 {
				t.Fatalf("group %d empty", g)
			}
			start := pt.GroupStart(g)
			for k := int32(0); k < size; k++ {
				rank := start + k
				if pt.Group(rank) != g {
					t.Fatalf("rank %d misassigned", rank)
				}
				if pt.PosOf(rank) != k+1 || pt.RankIdx(rank) != k || pt.SizeOf(rank) != size {
					t.Fatalf("accessor mismatch for rank %d", rank)
				}
				covered++
			}
		}
		if covered != n {
			t.Fatalf("covered %d of %d ranks", covered, n)
		}
	})
}

// FuzzInteractSoundness drives random interaction schedules (derived from a
// fuzzed byte string) over a correctly ranked harness and asserts the
// Lemma E.1(a) guarantees: no ⊤, conservation, restriction.
func FuzzInteractSoundness(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint64(7), []byte{9, 9, 9, 9, 1, 2})
	f.Fuzz(func(t *testing.T, seed uint64, schedule []byte) {
		const n, r = 6, 3
		h, err := NewHarness(n, r, nil, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(schedule) && i < 400; i += 2 {
			a := int(schedule[i]) % n
			b := int(schedule[i+1]) % n
			if a == b {
				b = (b + 1) % n
			}
			h.Interact(a, b)
		}
		if h.AnyTop() {
			t.Fatal("false ⊤ under fuzzed schedule")
		}
		if err := h.CheckMessageConservation(); err != nil {
			t.Fatal(err)
		}
		if err := h.CheckRestriction(); err != nil {
			t.Fatal(err)
		}
	})
}
