// Package detect implements DetectCollision_r (Section 5.1, Protocol 3 and
// Appendix E, Protocols 12–14), the paper's main technical contribution: a
// message-based rank-collision detector.
//
// Within each group of the rank partition (partition.go), every rank governs
// 2g² circulating messages (g being the group size). A message is a triple
// (rank, ID, content); contents carry the governing agent's signature, a
// value from [g⁵] refreshed every Θ(log g) of the agent's in-group
// interactions. Each agent records, per message ID it governs, the content
// it last wrote (the observations array). Messages spread through the group
// by a deterministic per-(rank, content) load-balancing exchange
// (BalanceLoad, Protocol 14). The error state ⊤ is raised when
//
//   - two agents of the same rank meet (obvious collision),
//   - two copies of the same circulating message meet (impossible from a
//     correct initialization, where each message has exactly one holder), or
//   - a circulating message disagrees with its governor's observation
//     (CheckMessageConsistency, Protocol 12) — the mechanism that makes
//     detection fast: a duplicate-rank agent refreshes its signature and
//     floods 2g messages per rank that conflict with its competitor's
//     records.
//
// Lemma E.1 establishes soundness (no ⊤ reachable from a correct
// initialization on a correct ranking — experiment T8) and robust
// completeness (⊤ within O((n²/r)·log n) interactions from any configuration
// with a duplicate rank — experiment T7).
package detect

import (
	"fmt"
	"math"
	"slices"

	"sspp/internal/coin"
)

// maxSigSpace caps the signature space. The paper uses [g⁵], which overflows
// int32 for large groups; capping keeps contents in 32 bits while preserving
// an O(g⁻³) collision probability at any simulation scale.
const maxSigSpace = int32(1) << 30

// Params holds the static configuration of DetectCollision_r.
type Params struct {
	pt *Partition
	// csig scales the signature refresh period c·log(g) (Protocol 13).
	csig int32
	// noBalance disables BalanceLoad (Protocol 14) — the ablation knob of
	// experiment A4. Without load balancing, refreshed messages stay
	// clumped at their governor and detection degrades to direct meetings.
	noBalance bool
	// sigOverride, when positive, replaces the [g⁵] signature space — used
	// by the model checker to keep the branching factor finite.
	sigOverride int32
}

// SetNoBalance toggles the BalanceLoad ablation (experiment A4).
func (p *Params) SetNoBalance(v bool) { p.noBalance = v }

// SetSigSpace overrides the signature space (clamped to at least 2). Only
// the bounded model checker should need this; it shrinks the randomness
// domain so every draw can be enumerated.
func (p *Params) SetSigSpace(s int32) {
	if s < 2 {
		s = 2
	}
	p.sigOverride = s
}

// sigSpace returns the effective signature space for a group of size g.
func (p *Params) sigSpace(g int32) int32 {
	if p.sigOverride > 0 {
		return p.sigOverride
	}
	return SigSpace(g)
}

// NewParams builds parameters for population size n and trade-off parameter
// r, partitioning the rank space into ⌈n/r⌉ groups.
func NewParams(n, r int) *Params {
	return &Params{pt: NewPartition(n, r), csig: 8}
}

// NewParamsWithRefresh is NewParams with an explicit signature-refresh
// constant c (Protocol 13's c·log r_u); values below 1 are clamped to 1.
func NewParamsWithRefresh(n, r int, c int) *Params {
	if c < 1 {
		c = 1
	}
	p := NewParams(n, r)
	p.csig = int32(c)
	return p
}

// Partition exposes the underlying rank partition.
func (p *Params) Partition() *Partition { return p.pt }

// SigSpace returns the signature space size for a group of size g: g⁵
// clamped to [2, maxSigSpace].
func SigSpace(g int32) int32 {
	s := math.Pow(float64(g), 5)
	if s < 2 {
		return 2
	}
	if s > float64(maxSigSpace) {
		return maxSigSpace
	}
	return int32(s)
}

// RefreshPeriod returns the signature refresh period c·log(g) for a group of
// size g (at least 2).
func (p *Params) RefreshPeriod(g int32) int32 {
	t := int32(math.Ceil(float64(p.csig) * math.Log(float64(g)+1)))
	if t < 2 {
		t = 2
	}
	return t
}

// msg is one circulating message: its ID within the governing rank's ID
// space [2g²] and its current content (a signature value).
type msg struct {
	id      int32
	content int32
}

// State is the per-agent local state of DetectCollision_r (the qDC field of
// StableVerify_r). The rank itself lives outside this struct (read-only
// input, §5.1).
type State struct {
	// Err is the absorbing error state ⊤.
	Err bool
	// Signature is the content the agent currently writes into messages it
	// governs.
	Signature int32
	// Counter counts in-group interactions until the next signature refresh.
	Counter int32
	// Msgs holds the circulating messages this agent carries, indexed by
	// the governing rank's index within the agent's group; each row is a
	// list of (ID, content) pairs.
	Msgs [][]msg
	// Obs is the observations array: Obs[j-1] is the content the agent last
	// wrote into its own message with ID j.
	Obs []int32
}

// InitState returns the clean initial state q0,DC for an agent of the given
// rank (§5.1): signature, counter and all observations are 1, and the agent
// holds the hardcoded pre-mixed block of message IDs
// {2(p−1)g+1, …, 2pg} for every rank of its group, all with content 1,
// where p is the rank's position in its group. Out-of-range ranks yield an
// immediate ⊤ (they cannot occur in valid configurations).
func InitState(p *Params, rank int32) *State {
	return ReinitInto(p, rank, nil)
}

// ReinitInto resets s to the clean initial state q0,DC for rank, reusing its
// message and observation buffers when they have the right shape; a nil s
// allocates fresh (InitState). Callers recycling states across role
// transitions use this to avoid re-allocating the O(g²) detection state.
func ReinitInto(p *Params, rank int32, s *State) *State {
	g := p.pt.SizeOf(rank)
	if g == 0 {
		if s == nil {
			return &State{Err: true}
		}
		*s = State{Err: true}
		return s
	}
	if s == nil {
		s = &State{}
	}
	pos := p.pt.PosOf(rank)
	s.Err = false
	s.Signature = 1
	s.Counter = 1
	if cap(s.Obs) >= int(2*g*g) {
		s.Obs = s.Obs[:2*g*g]
	} else {
		s.Obs = make([]int32, 2*g*g)
	}
	for j := range s.Obs {
		s.Obs[j] = 1
	}
	if cap(s.Msgs) >= int(g) {
		s.Msgs = s.Msgs[:g]
	} else {
		s.Msgs = make([][]msg, g)
	}
	lo := 2 * (pos - 1) * g // exclusive of +1 offset; IDs lo+1 .. lo+2g
	for i := int32(0); i < g; i++ {
		row := s.Msgs[i][:0]
		for k := int32(1); k <= 2*g; k++ {
			row = append(row, msg{id: lo + k, content: 1})
		}
		s.Msgs[i] = row
	}
	return s
}

// MessageCount returns the number of circulating messages the agent holds.
func (s *State) MessageCount() int {
	c := 0
	for _, row := range s.Msgs {
		c += len(row)
	}
	return c
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State { return s.CloneInto(nil) }

// CloneInto deep-copies s into dst, reusing dst's row and observation
// buffers; a nil dst allocates a fresh state. The species-backend compact
// model copies interned representatives into reaction scratch on every
// interaction, so this path must not allocate once the buffers have grown.
func (s *State) CloneInto(dst *State) *State {
	if dst == nil {
		dst = &State{}
	}
	dst.Err, dst.Signature, dst.Counter = s.Err, s.Signature, s.Counter
	dst.Obs = append(dst.Obs[:0], s.Obs...)
	if cap(dst.Msgs) >= len(s.Msgs) {
		dst.Msgs = dst.Msgs[:len(s.Msgs)]
	} else {
		rows := make([][]msg, len(s.Msgs))
		copy(rows, dst.Msgs) // keep already-grown row buffers
		dst.Msgs = rows
	}
	for i, row := range s.Msgs {
		dst.Msgs[i] = append(dst.Msgs[i][:0], row...)
	}
	return dst
}

// appendI32 appends v as 4 little-endian bytes.
func appendI32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendKey appends a canonical encoding of the state to b and returns the
// extended slice. Two states with the same key are semantically identical:
// the in-row message order (which BalanceLoad permutes) is canonicalized to
// the (content, id) row order of sortMsgs — the invariant clean executions
// already maintain, so the common case encodes in place without copying.
// Every field is encoded at full width: signatures range over [1, 2g²·n²]
// and counters over [0, RefreshRate], both of which overflow narrower
// encodings long before the n = 10⁶ populations the species backend runs.
// The model checker and the compact-model intern tables use keys to
// deduplicate configurations, so a truncation here is a state collision.
func (s *State) AppendKey(b []byte) []byte {
	if s.Err {
		return append(b, 0xFF)
	}
	b = appendI32(b, s.Signature)
	b = appendI32(b, s.Counter)
	for _, row := range s.Msgs {
		if !msgsSorted(row) {
			row = append([]msg(nil), row...)
			sortMsgs(row)
		}
		b = append(b, 0xFE)
		for _, m := range row {
			b = appendI32(b, m.id)
			b = appendI32(b, m.content)
		}
	}
	b = append(b, 0xFD)
	for _, o := range s.Obs {
		b = appendI32(b, o)
	}
	return b
}

// Scratch holds reusable buffers for Interact. One Scratch may be shared by
// all agents of a single-threaded simulation; it grows on demand.
type Scratch struct {
	merged []msg
	uOut   []msg
	vOut   []msg
	seen   []int64
	epoch  int64
}

// NewScratch returns an empty scratch buffer.
func NewScratch() *Scratch { return &Scratch{} }

// mark prepares the seen array for a new deduplication pass over an ID space
// of the given size.
func (sc *Scratch) mark(idSpace int32) {
	if int(idSpace) > len(sc.seen) {
		sc.seen = make([]int64, idSpace)
		sc.epoch = 0
	}
	sc.epoch++
}

// Interact applies DetectCollision_r (Protocol 3) to the ordered pair with
// ranks uRank, vRank and states u, v. su and sv supply the agents'
// randomness for signature refreshes. Already-errored states are left for
// the wrapper to collect (⊤ is absorbing).
func Interact(p *Params, uRank int32, u *State, vRank int32, v *State, su, sv coin.Sampler, sc *Scratch) {
	// Line 1–2: only same-group pairs interact non-trivially.
	if !p.pt.SameGroup(uRank, vRank) {
		return
	}
	if u.Err || v.Err {
		return
	}
	g := p.pt.SizeOf(uRank)

	// Lines 3–4: shared rank, or two copies of one circulating message.
	if uRank == vRank || duplicateMessage(g, u, v, sc) {
		u.Err, v.Err = true, true
		return
	}

	// Line 5: CheckMessageConsistency both ways (Protocol 12).
	checkConsistency(p, uRank, u, v)
	checkConsistency(p, vRank, v, u)
	if u.Err || v.Err {
		return
	}

	// Line 6: UpdateMessages both ways (Protocol 13).
	updateMessages(p, uRank, u, v, su)
	updateMessages(p, vRank, v, u, sv)

	// Line 7: BalanceLoad (Protocol 14).
	if !p.noBalance {
		balanceLoad(g, u, v, sc)
	}
}

// duplicateMessage reports whether u and v hold two copies of the same
// (rank, ID) message. From a correct initialization every message has
// exactly one holder, so a duplicate proves an inconsistent start.
func duplicateMessage(g int32, u, v *State, sc *Scratch) bool {
	sc.mark(2 * g * g)
	for idx := int32(0); idx < g; idx++ {
		if int(idx) >= len(u.Msgs) || int(idx) >= len(v.Msgs) {
			continue
		}
		tag := sc.epoch*int64(g) + int64(idx) + 1
		for _, m := range u.Msgs[idx] {
			if m.id >= 1 && int(m.id) <= len(sc.seen) {
				sc.seen[m.id-1] = tag
			}
		}
		for _, m := range v.Msgs[idx] {
			if m.id >= 1 && int(m.id) <= len(sc.seen) && sc.seen[m.id-1] == tag {
				return true
			}
		}
	}
	return false
}

// checkConsistency is CheckMessageConsistency(u, v) (Protocol 12): any
// message held by v and governed by u's rank must match u's observation.
func checkConsistency(p *Params, uRank int32, u, v *State) {
	idx := p.pt.RankIdx(uRank)
	if idx < 0 || int(idx) >= len(v.Msgs) {
		return
	}
	for _, m := range v.Msgs[idx] {
		if m.id < 1 || int(m.id) > len(u.Obs) {
			u.Err, v.Err = true, true // malformed ID: adversarial state
			return
		}
		if m.content != u.Obs[m.id-1] {
			u.Err, v.Err = true, true
			return
		}
	}
}

// updateMessages is UpdateMessages(u, v) (Protocol 13): u ticks its refresh
// counter, possibly resamples its signature (rewriting its own held
// messages), and always restamps the messages v carries for u's rank.
func updateMessages(p *Params, uRank int32, u, v *State, su coin.Sampler) {
	g := p.pt.SizeOf(uRank)
	idx := p.pt.RankIdx(uRank)
	u.Counter++
	if u.Counter >= p.RefreshPeriod(g) {
		u.Signature = int32(su(int(p.sigSpace(g)))) + 1
		u.Counter = 1
		if int(idx) < len(u.Msgs) {
			restamp(u.Msgs[idx], u.Signature, u.Obs)
		}
	}
	if int(idx) < len(v.Msgs) {
		restamp(v.Msgs[idx], u.Signature, u.Obs)
	}
}

// restamp rewrites every message of row to the governor's current signature,
// mirroring each write into the governor's observations. A row whose contents
// actually changed is re-sorted to restore the (content, id) row invariant
// that balanceLoad's linear merge relies on (uniform content, so the sort
// reduces to an ID sort).
func restamp(row []msg, sig int32, obs []int32) {
	changed := false
	for i := range row {
		m := &row[i]
		if m.content != sig {
			m.content = sig
			changed = true
		}
		if m.id >= 1 && int(m.id) <= len(obs) {
			obs[m.id-1] = sig
		}
	}
	if changed {
		sortMsgs(row)
	}
}

// balanceLoad is BalanceLoad(u, v) (Protocol 14): for every (rank, content)
// class, the union of the pair's messages is split between them — ordered by
// ID, first half / second half — with the ceil half going to whichever agent
// has accumulated fewer messages so far. The exchange is deterministic; no
// randomness is consumed.
func balanceLoad(g int32, u, v *State, sc *Scratch) {
	uCount, vCount := 0, 0
	for idx := int32(0); idx < g; idx++ {
		var uRow, vRow []msg
		if int(idx) < len(u.Msgs) {
			uRow = u.Msgs[idx]
		}
		if int(idx) < len(v.Msgs) {
			vRow = v.Msgs[idx]
		}
		if len(uRow)+len(vRow) == 0 {
			continue
		}
		mergeRows(sc, uRow, vRow)
		sc.uOut, sc.vOut = sc.uOut[:0], sc.vOut[:0]
		for lo := 0; lo < len(sc.merged); {
			hi := lo + 1
			for hi < len(sc.merged) && sc.merged[hi].content == sc.merged[lo].content {
				hi++
			}
			run := sc.merged[lo:hi]
			floorHalf := run[:len(run)/2]
			ceilHalf := run[len(run)/2:]
			if uCount > vCount {
				sc.uOut = append(sc.uOut, floorHalf...)
				sc.vOut = append(sc.vOut, ceilHalf...)
				uCount += len(floorHalf)
				vCount += len(ceilHalf)
			} else {
				sc.vOut = append(sc.vOut, floorHalf...)
				sc.uOut = append(sc.uOut, ceilHalf...)
				vCount += len(floorHalf)
				uCount += len(ceilHalf)
			}
			lo = hi
		}
		if int(idx) < len(u.Msgs) {
			u.Msgs[idx] = append(u.Msgs[idx][:0], sc.uOut...)
		}
		if int(idx) < len(v.Msgs) {
			v.Msgs[idx] = append(v.Msgs[idx][:0], sc.vOut...)
		}
	}
}

// sortMsgs sorts ms by (content, id).
func sortMsgs(ms []msg) {
	slices.SortFunc(ms, func(a, b msg) int {
		if a.content != b.content {
			return int(a.content) - int(b.content)
		}
		return int(a.id) - int(b.id)
	})
}

// msgLess is the (content, id) order of sortMsgs.
func msgLess(a, b msg) bool {
	if a.content != b.content {
		return a.content < b.content
	}
	return a.id < b.id
}

// msgsSorted reports whether ms is sorted by (content, id). Clean executions
// maintain this as a row invariant (InitState, restamp and balanceLoad all
// emit sorted rows); only adversarially constructed states violate it.
func msgsSorted(ms []msg) bool {
	for i := 1; i < len(ms); i++ {
		if msgLess(ms[i], ms[i-1]) {
			return false
		}
	}
	return true
}

// mergeRows fills sc.merged with the (content, id)-sorted union of uRow and
// vRow: a linear two-way merge when both rows honor the row invariant, and an
// explicit sort otherwise (adversarial states only). The result is exactly
// what sorting the concatenation would produce — ties are identical msg
// values, so run order is preserved bit-for-bit.
func mergeRows(sc *Scratch, uRow, vRow []msg) {
	sc.merged = sc.merged[:0]
	if !msgsSorted(uRow) || !msgsSorted(vRow) {
		sc.merged = append(sc.merged, uRow...)
		sc.merged = append(sc.merged, vRow...)
		sortMsgs(sc.merged)
		return
	}
	i, j := 0, 0
	for i < len(uRow) && j < len(vRow) {
		if msgLess(vRow[j], uRow[i]) {
			sc.merged = append(sc.merged, vRow[j])
			j++
		} else {
			sc.merged = append(sc.merged, uRow[i])
			i++
		}
	}
	sc.merged = append(sc.merged, uRow[i:]...)
	sc.merged = append(sc.merged, vRow[j:]...)
}

// CheckStateRestriction verifies the definitional restriction of §5.1: if an
// agent of rank i holds its own message (i, j), the message content must
// equal Obs[j-1]. Adversarial initializations must respect it (the paper
// excludes violating states from the state space by definition).
func CheckStateRestriction(p *Params, rank int32, s *State) error {
	if s.Err {
		return nil
	}
	idx := p.pt.RankIdx(rank)
	if idx < 0 || int(idx) >= len(s.Msgs) {
		return nil
	}
	for _, m := range s.Msgs[idx] {
		if m.id < 1 || int(m.id) > len(s.Obs) {
			return fmt.Errorf("detect: own message ID %d outside observation space", m.id)
		}
		if s.Obs[m.id-1] != m.content {
			return fmt.Errorf("detect: own message (%d,%d) content %d != observation %d",
				rank, m.id, m.content, s.Obs[m.id-1])
		}
	}
	return nil
}
