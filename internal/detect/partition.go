// partition.go implements the rank-space partition of Section 3.3: the rank
// space [n] is split into ⌈n/r⌉ contiguous groups of nearly equal size
// (between ⌊n/⌈n/r⌉⌋ and ⌈n/⌈n/r⌉⌉ ≤ r), encoded in the transition function
// as the map 𝒢 from ranks to groups. Collision detection runs independently
// inside each group; interactions across groups are ignored by
// DetectCollision_r.

package detect

// Partition is the static partition 𝒢 of the rank space [1, n].
type Partition struct {
	n      int
	starts []int32 // start rank of each group, ascending; len = number of groups
	sizes  []int32 // size of each group
	group  []int32 // rank-1 -> group index
}

// NewPartition builds the partition of [1, n] into ⌈n/r⌉ balanced contiguous
// groups. r is clamped to [1, n].
func NewPartition(n, r int) *Partition {
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	numGroups := (n + r - 1) / r
	base := n / numGroups
	extra := n % numGroups // the first `extra` groups get one more rank
	pt := &Partition{
		n:      n,
		starts: make([]int32, 0, numGroups),
		sizes:  make([]int32, 0, numGroups),
		group:  make([]int32, n),
	}
	start := int32(1)
	for g := 0; g < numGroups; g++ {
		size := int32(base)
		if g < extra {
			size++
		}
		pt.starts = append(pt.starts, start)
		pt.sizes = append(pt.sizes, size)
		for k := int32(0); k < size; k++ {
			pt.group[start-1+k] = int32(g)
		}
		start += size
	}
	return pt
}

// N returns the size of the partitioned rank space.
func (pt *Partition) N() int { return pt.n }

// NumGroups returns the number of groups ⌈n/r⌉.
func (pt *Partition) NumGroups() int { return len(pt.starts) }

// Group returns the group index of rank, or -1 when rank lies outside
// [1, n] (possible only under adversarial initialization).
func (pt *Partition) Group(rank int32) int32 {
	if rank < 1 || int(rank) > pt.n {
		return -1
	}
	return pt.group[rank-1]
}

// GroupSize returns the size of group g.
func (pt *Partition) GroupSize(g int32) int32 { return pt.sizes[g] }

// GroupStart returns the smallest rank of group g.
func (pt *Partition) GroupStart(g int32) int32 { return pt.starts[g] }

// SizeOf returns the size r_u of rank's group (the paper's r_u = |𝒢(rank)|),
// or 0 for out-of-range ranks.
func (pt *Partition) SizeOf(rank int32) int32 {
	g := pt.Group(rank)
	if g < 0 {
		return 0
	}
	return pt.sizes[g]
}

// PosOf returns the 1-based position of rank within its group (the paper's
// rank_r), or 0 for out-of-range ranks.
func (pt *Partition) PosOf(rank int32) int32 {
	g := pt.Group(rank)
	if g < 0 {
		return 0
	}
	return rank - pt.starts[g] + 1
}

// RankIdx returns the 0-based index of rank within its group, or -1 when out
// of range. It is the msgs row index used by State.
func (pt *Partition) RankIdx(rank int32) int32 {
	g := pt.Group(rank)
	if g < 0 {
		return -1
	}
	return rank - pt.starts[g]
}

// SameGroup reports whether two ranks belong to the same group; false when
// either is out of range.
func (pt *Partition) SameGroup(a, b int32) bool {
	ga, gb := pt.Group(a), pt.Group(b)
	return ga >= 0 && ga == gb
}
