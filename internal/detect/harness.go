// harness.go provides a standalone DetectCollision_r population over a fixed
// rank assignment, used to validate Lemma E.1 in isolation (experiments T7
// and T8) and as the substrate for adversarial-initialization tooling.

package detect

import (
	"fmt"

	"sspp/internal/coin"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// Harness runs DetectCollision_r alone: every agent has a fixed rank (the
// module's read-only input) and a detection state; the wrapper layers of
// StableVerify_r are absent.
type Harness struct {
	params *Params
	ranks  []int32
	states []*State
	sample coin.Sampler
	sc     *Scratch
}

var _ sim.Protocol = (*Harness)(nil)

// NewHarness builds a harness over n agents with trade-off parameter r and
// the given rank assignment (1-based; nil means the identity ranking 1..n).
// All detection states start from the clean initialization q0,DC.
func NewHarness(n, r int, ranks []int32, src *rng.PRNG) (*Harness, error) {
	if n < 2 {
		return nil, fmt.Errorf("detect: population size %d < 2", n)
	}
	if ranks == nil {
		ranks = make([]int32, n)
		for i := range ranks {
			ranks[i] = int32(i + 1)
		}
	}
	if len(ranks) != n {
		return nil, fmt.Errorf("detect: %d ranks for %d agents", len(ranks), n)
	}
	p := NewParams(n, r)
	h := &Harness{
		params: p,
		ranks:  append([]int32(nil), ranks...),
		states: make([]*State, n),
		sample: coin.FromPRNG(src),
		sc:     NewScratch(),
	}
	for i, rank := range h.ranks {
		if rank < 1 || int(rank) > n {
			return nil, fmt.Errorf("detect: rank %d of agent %d outside [1, %d]", rank, i, n)
		}
		h.states[i] = InitState(p, rank)
	}
	return h, nil
}

// N returns the population size.
func (h *Harness) N() int { return len(h.ranks) }

// Params returns the harness's detection parameters.
func (h *Harness) Params() *Params { return h.params }

// Interact applies one DetectCollision_r interaction.
func (h *Harness) Interact(a, b int) {
	Interact(h.params, h.ranks[a], h.states[a], h.ranks[b], h.states[b], h.sample, h.sample, h.sc)
}

// Correct reports whether at least one agent has raised ⊤. This orientation
// suits the completeness experiments, which measure time-to-detection; the
// soundness experiments instead assert that Correct never becomes true.
func (h *Harness) Correct() bool { return h.AnyTop() }

// AnyTop reports whether any agent is in the error state ⊤.
func (h *Harness) AnyTop() bool {
	for _, s := range h.states {
		if s.Err {
			return true
		}
	}
	return false
}

// TopCount returns the number of agents currently in ⊤.
func (h *Harness) TopCount() int {
	c := 0
	for _, s := range h.states {
		if s.Err {
			c++
		}
	}
	return c
}

// State returns agent i's detection state (shared, not a copy).
func (h *Harness) State(i int) *State { return h.states[i] }

// Rank returns agent i's rank.
func (h *Harness) Rank(i int) int32 { return h.ranks[i] }

// CheckMessageConservation verifies that every message (rank, ID) of every
// group has exactly one holder — the invariant a clean initialization
// establishes and the protocol preserves (observations 2 and 3 of Appendix
// E.1). It only applies to runs started from q0,DC with a correct ranking.
func (h *Harness) CheckMessageConservation() error {
	pt := h.params.pt
	holders := make(map[int64]int)
	for i, s := range h.states {
		if s.Err {
			return nil // after ⊤ the wrapper resets; conservation no longer meaningful
		}
		g := pt.Group(h.ranks[i])
		if g < 0 {
			continue
		}
		start := pt.GroupStart(g)
		for idx, row := range s.Msgs {
			govRank := start + int32(idx)
			for _, m := range row {
				key := int64(govRank)<<32 | int64(m.id)
				holders[key]++
				if holders[key] > 1 {
					return fmt.Errorf("detect: message (%d,%d) held %d times", govRank, m.id, holders[key])
				}
			}
		}
	}
	// Every ID must be held exactly once: count totals per group.
	perGroup := make(map[int32]int)
	for key := range holders {
		rank := int32(key >> 32)
		perGroup[pt.Group(rank)]++
	}
	for g, count := range perGroup {
		size := int(pt.GroupSize(g))
		want := size * 2 * size * size // g ranks × 2g² IDs
		if count != want {
			return fmt.Errorf("detect: group %d holds %d distinct messages, want %d", g, count, want)
		}
	}
	return nil
}

// CheckRestriction validates the §5.1 state-space restriction for every
// agent (own held messages match own observations).
func (h *Harness) CheckRestriction() error {
	for i, s := range h.states {
		if err := CheckStateRestriction(h.params, h.ranks[i], s); err != nil {
			return fmt.Errorf("agent %d: %w", i, err)
		}
	}
	return nil
}

// ClumpRankMessages moves every circulating message governed by rank into
// the single holder agent, which must have a different rank in the same
// group (moving a foreign message never violates the §5.1 restriction).
// The result is the adversarial "clumped" distribution that BalanceLoad
// (Protocol 14) exists to disperse: the per-rank holding invariant is
// maximally violated while the message multiset is preserved. Experiment A4
// measures detection latency from here with and without balancing.
func (h *Harness) ClumpRankMessages(rank int32, holder int) error {
	pt := h.params.pt
	if h.ranks[holder] == rank {
		return fmt.Errorf("detect: holder %d has rank %d itself", holder, rank)
	}
	if !pt.SameGroup(h.ranks[holder], rank) {
		return fmt.Errorf("detect: holder rank %d not in rank %d's group", h.ranks[holder], rank)
	}
	idx := pt.RankIdx(rank)
	dst := h.states[holder]
	for i, s := range h.states {
		if i == holder || int(idx) >= len(s.Msgs) {
			continue
		}
		dst.Msgs[idx] = append(dst.Msgs[idx], s.Msgs[idx]...)
		s.Msgs[idx] = s.Msgs[idx][:0]
	}
	return nil
}

// CheckCoherence verifies that a subpopulation's detection layer is in a
// configuration a clean run could have produced: every (rank, ID) message
// has at most one holder within the subpopulation, and every message whose
// governing rank belongs to the subpopulation matches that governor's
// observation. Together with a correct ranking this implies no ⊤ is ever
// raised (the three trigger conditions of Protocol 3 are all excluded, and
// the update rules preserve coherence) — it is the checkable heart of
// Lemma 6.1's condition (b). Agents in ⊤ make the subpopulation incoherent
// by definition.
func CheckCoherence(p *Params, ranks []int32, states []*State) error {
	if len(ranks) != len(states) {
		return fmt.Errorf("detect: %d ranks for %d states", len(ranks), len(states))
	}
	pt := p.pt
	// Locate each rank's governor observation array within the bucket.
	obsOf := make(map[int32][]int32, len(ranks))
	for i, rank := range ranks {
		if states[i].Err {
			return fmt.Errorf("detect: agent %d is in ⊤", i)
		}
		obsOf[rank] = states[i].Obs
	}
	holders := make(map[int64]bool)
	for i, s := range states {
		g := pt.Group(ranks[i])
		if g < 0 {
			continue
		}
		start := pt.GroupStart(g)
		for idx, row := range s.Msgs {
			govRank := start + int32(idx)
			for _, m := range row {
				key := int64(govRank)<<32 | int64(m.id)
				if holders[key] {
					return fmt.Errorf("detect: message (%d,%d) has two holders", govRank, m.id)
				}
				holders[key] = true
				if obs, ok := obsOf[govRank]; ok {
					if m.id < 1 || int(m.id) > len(obs) {
						return fmt.Errorf("detect: message (%d,%d) outside the ID space", govRank, m.id)
					}
					if obs[m.id-1] != m.content {
						return fmt.Errorf("detect: message (%d,%d) content %d != governor observation %d",
							govRank, m.id, m.content, obs[m.id-1])
					}
				}
			}
		}
	}
	return nil
}

// TamperForeignMessage corrupts the content of one circulating message held
// by agent holder that is governed by a rank different from the holder's own
// rank. This preserves the §5.1 state restriction (only foreign messages are
// touched) and models an adversarial initialization of the message system
// with a still-correct ranking — the soft-reset scenario of §3.2. It returns
// false when the holder carries no foreign message.
func (h *Harness) TamperForeignMessage(holder int) bool {
	s := h.states[holder]
	rank := h.ranks[holder]
	return TamperForeignMessage(h.params, rank, s)
}

// TamperForeignMessage corrupts one message in s governed by a rank other
// than ownRank, flipping its content to a different value. It reports
// whether a message was modified.
func TamperForeignMessage(p *Params, ownRank int32, s *State) bool {
	idx := p.pt.RankIdx(ownRank)
	for row := range s.Msgs {
		if int32(row) == idx {
			continue
		}
		if len(s.Msgs[row]) == 0 {
			continue
		}
		g := p.pt.SizeOf(ownRank)
		m := &s.Msgs[row][0]
		m.content = m.content%p.sigSpace(g) + 1 // guaranteed different, in-range
		return true
	}
	return false
}

// DuplicateMessageInto copies the first circulating message of src into
// dst's corresponding row, producing a two-holder message — a type-valid but
// inconsistent configuration that the duplicate check of Protocol 3 line 3
// must flag. Both agents must be in the same group. It reports success.
func DuplicateMessageInto(p *Params, srcRank int32, src *State, dstRank int32, dst *State) bool {
	if !p.pt.SameGroup(srcRank, dstRank) {
		return false
	}
	dstIdx := p.pt.RankIdx(dstRank)
	for row := range src.Msgs {
		if len(src.Msgs[row]) == 0 || int32(row) == dstIdx {
			// Never copy a message governed by dst's own rank: that could
			// violate the §5.1 restriction on dst.
			continue
		}
		if row >= len(dst.Msgs) {
			continue
		}
		dst.Msgs[row] = append(dst.Msgs[row], src.Msgs[row][0])
		return true
	}
	return false
}
