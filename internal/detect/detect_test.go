package detect

import (
	"math"
	"testing"

	"sspp/internal/rng"
	"sspp/internal/sim"
)

func TestSigSpace(t *testing.T) {
	if SigSpace(1) != 2 {
		t.Fatalf("SigSpace(1) = %d, want clamp to 2", SigSpace(1))
	}
	if SigSpace(4) != 1024 {
		t.Fatalf("SigSpace(4) = %d, want 4^5", SigSpace(4))
	}
	if SigSpace(1000) != maxSigSpace {
		t.Fatalf("SigSpace(1000) = %d, want cap", SigSpace(1000))
	}
}

func TestInitState(t *testing.T) {
	p := NewParams(8, 4) // groups of size 4
	s := InitState(p, 2) // rank 2: group 0, position 2
	g := int32(4)
	if len(s.Msgs) != int(g) || len(s.Obs) != int(2*g*g) {
		t.Fatalf("dimensions: %d rows, %d obs", len(s.Msgs), len(s.Obs))
	}
	if s.Signature != 1 || s.Counter != 1 || s.Err {
		t.Fatalf("initial scalars: %+v", s)
	}
	for _, o := range s.Obs {
		if o != 1 {
			t.Fatal("observations must start at 1")
		}
	}
	// Position 2 holds IDs {2g+1 .. 4g} = {9..16} of every rank in group.
	for row, msgs := range s.Msgs {
		if len(msgs) != int(2*g) {
			t.Fatalf("row %d has %d messages, want %d", row, len(msgs), 2*g)
		}
		for k, m := range msgs {
			if want := int32(9 + k); m.id != want {
				t.Fatalf("row %d msg %d id = %d, want %d", row, k, m.id, want)
			}
			if m.content != 1 {
				t.Fatal("initial content must be 1")
			}
		}
	}
	if s.MessageCount() != int(2*g*g) {
		t.Fatalf("MessageCount = %d, want %d", s.MessageCount(), 2*g*g)
	}
}

func TestInitStateInvalidRank(t *testing.T) {
	p := NewParams(8, 4)
	if s := InitState(p, 0); !s.Err {
		t.Fatal("invalid rank must yield error state")
	}
}

func TestInitialConservation(t *testing.T) {
	// All agents of a group jointly hold each (rank, ID) exactly once.
	h, err := NewHarness(12, 4, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckMessageConservation(); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckRestriction(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossGroupInteractionIsNoop(t *testing.T) {
	h, err := NewHarness(8, 2, nil, rng.New(2)) // 4 groups of 2
	if err != nil {
		t.Fatal(err)
	}
	before := h.State(0).MessageCount()
	h.Interact(0, 7) // ranks 1 and 8: different groups
	if h.State(0).MessageCount() != before || h.AnyTop() {
		t.Fatal("cross-group interaction must be a no-op")
	}
	if h.State(0).Counter != 1 {
		t.Fatal("cross-group interaction must not tick the refresh counter")
	}
}

func TestDirectRankCollision(t *testing.T) {
	ranks := []int32{1, 1, 3, 4, 5, 6, 7, 8} // agents 0 and 1 collide
	h, err := NewHarness(8, 4, ranks, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	h.Interact(0, 1)
	if !h.State(0).Err || !h.State(1).Err {
		t.Fatal("same-rank interaction must raise ⊤ at both agents")
	}
	if h.TopCount() != 2 {
		t.Fatalf("TopCount = %d, want 2", h.TopCount())
	}
}

func TestErrIsAbsorbing(t *testing.T) {
	ranks := []int32{1, 1, 3, 4}
	h, err := NewHarness(4, 2, ranks, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	h.Interact(0, 1)
	h.Interact(0, 2) // errored agent interacting further
	if !h.State(0).Err {
		t.Fatal("⊤ must be absorbing")
	}
	if h.State(2).Err {
		t.Fatal("⊤ must not spread inside DetectCollision (the wrapper handles it)")
	}
}

func TestDuplicateCirculatingMessage(t *testing.T) {
	h, err := NewHarness(8, 4, nil, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Copy a message from agent 0 (rank 1) into agent 1 (rank 2): both in
	// group 0. The duplicate check must fire when they meet.
	if !DuplicateMessageInto(h.Params(), h.Rank(0), h.State(0), h.Rank(1), h.State(1)) {
		t.Fatal("duplication failed")
	}
	h.Interact(0, 1)
	if !h.AnyTop() {
		t.Fatal("duplicate circulating message not detected on direct meeting")
	}
}

// TestSoundness is Lemma E.1(a): from a correct initialization on a correct
// ranking, no ⊤ is ever generated; message conservation and the state
// restriction hold throughout.
func TestSoundness(t *testing.T) {
	cases := []struct{ n, r int }{{16, 1}, {16, 4}, {16, 8}, {24, 6}}
	for _, c := range cases {
		for seed := uint64(0); seed < 3; seed++ {
			h, err := NewHarness(c.n, c.r, nil, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(seed + 100)
			for i := 0; i < 40_000; i++ {
				a, b := r.Pair(c.n)
				h.Interact(a, b)
				if h.AnyTop() {
					t.Fatalf("n=%d r=%d seed=%d: false ⊤ at interaction %d", c.n, c.r, seed, i)
				}
			}
			if err := h.CheckMessageConservation(); err != nil {
				t.Fatalf("n=%d r=%d seed=%d: %v", c.n, c.r, seed, err)
			}
			if err := h.CheckRestriction(); err != nil {
				t.Fatalf("n=%d r=%d seed=%d: %v", c.n, c.r, seed, err)
			}
		}
	}
}

// TestCompletenessDuplicateRank is Lemma E.1(b): with a duplicated rank, ⊤
// is raised within O((n²/r)·log n) interactions, w.h.p.
func TestCompletenessDuplicateRank(t *testing.T) {
	const n = 32
	for _, r := range []int{4, 8, 16} {
		for seed := uint64(0); seed < 5; seed++ {
			ranks := make([]int32, n)
			for i := range ranks {
				ranks[i] = int32(i + 1)
			}
			// Duplicate one rank inside the first group; the displaced rank
			// disappears (as after a failed ranking).
			ranks[1] = 1
			h, err := NewHarness(n, r, ranks, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			bound := uint64(200 * float64(n*n) / float64(r) * math.Log(n))
			res := sim.Run(h, rng.New(seed+55), sim.Options{
				MaxInteractions:    bound,
				CheckEvery:         uint64(n / 2),
				StopAfterStableFor: 1,
			})
			if !res.Stabilized {
				t.Fatalf("r=%d seed=%d: no detection within %d interactions", r, seed, bound)
			}
		}
	}
}

// TestCompletenessTamperedMessage: a single corrupted circulating message
// (with a correct ranking) is eventually detected — the slow path that
// motivates the soft-reset mechanism (§3.1 end, §3.2).
func TestCompletenessTamperedMessage(t *testing.T) {
	const n = 12
	for seed := uint64(0); seed < 3; seed++ {
		h, err := NewHarness(n, 6, nil, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !h.TamperForeignMessage(2) {
			t.Fatal("tamper failed")
		}
		if err := h.CheckRestriction(); err != nil {
			t.Fatalf("tamper broke the state restriction: %v", err)
		}
		r := rng.New(seed + 9)
		detected := false
		for i := 0; i < 4_000_000; i++ {
			a, b := r.Pair(n)
			h.Interact(a, b)
			if h.AnyTop() {
				detected = true
				break
			}
		}
		if !detected {
			t.Fatalf("seed %d: tampered message never detected", seed)
		}
	}
}

// TestSignatureRefresh: after enough same-group interactions the signature
// is resampled away from its initial value and the agent's own messages and
// observations follow it.
func TestSignatureRefresh(t *testing.T) {
	h, err := NewHarness(4, 2, nil, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	changed := false
	for i := 0; i < 5000; i++ {
		a, b := r.Pair(4)
		h.Interact(a, b)
		if h.State(0).Signature != 1 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("signature never refreshed")
	}
	if h.AnyTop() {
		t.Fatal("refresh must not raise ⊤ on unique ranks")
	}
	if err := h.CheckRestriction(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadBalanceSpreads: starting from the clean block assignment, after
// O(g·log g) same-group interactions every agent holds messages of every
// rank in its group at roughly even counts.
func TestLoadBalanceSpreads(t *testing.T) {
	const n = 8
	h, err := NewHarness(n, 8, nil, rng.New(9)) // one group of 8
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	for i := 0; i < 20_000; i++ {
		a, b := r.Pair(n)
		h.Interact(a, b)
	}
	if h.AnyTop() {
		t.Fatal("unexpected ⊤")
	}
	g := 8
	per := 2 * g * g // average messages per agent
	for i := 0; i < n; i++ {
		c := h.State(i).MessageCount()
		if c < per/2 || c > per*2 {
			t.Errorf("agent %d holds %d messages, want within [%d, %d]", i, c, per/2, per*2)
		}
	}
	if err := h.CheckMessageConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckStateRestrictionDetectsViolation(t *testing.T) {
	p := NewParams(4, 2)
	s := InitState(p, 1)
	// Corrupt an own-rank message without touching observations.
	s.Msgs[0][0].content = 999
	if err := CheckStateRestriction(p, 1, s); err == nil {
		t.Fatal("restriction violation not detected")
	}
}

func TestNewHarnessValidation(t *testing.T) {
	if _, err := NewHarness(1, 1, nil, rng.New(1)); err == nil {
		t.Fatal("n < 2 must fail")
	}
	if _, err := NewHarness(4, 2, []int32{1, 2}, rng.New(1)); err == nil {
		t.Fatal("rank length mismatch must fail")
	}
	if _, err := NewHarness(4, 2, []int32{1, 2, 3, 9}, rng.New(1)); err == nil {
		t.Fatal("out-of-range rank must fail")
	}
}

func TestRefreshPeriod(t *testing.T) {
	p := NewParams(64, 8)
	if p.RefreshPeriod(8) < 2 {
		t.Fatal("refresh period too small")
	}
	pc := NewParamsWithRefresh(64, 8, 0)
	if pc.csig != 1 {
		t.Fatalf("csig = %d, want clamp to 1", pc.csig)
	}
}
