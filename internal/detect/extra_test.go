package detect

import (
	"strings"
	"testing"

	"sspp/internal/rng"
)

func TestCloneIsDeep(t *testing.T) {
	p := NewParams(8, 4)
	s := InitState(p, 1)
	c := s.Clone()
	c.Msgs[0][0].content = 99
	c.Obs[0] = 99
	c.Signature = 7
	if s.Msgs[0][0].content == 99 || s.Obs[0] == 99 || s.Signature == 7 {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestAppendKeyCanonicalUnderRowPermutation(t *testing.T) {
	p := NewParams(8, 4)
	a := InitState(p, 1)
	b := InitState(p, 1)
	// Reverse one row of b: same semantic state, different slice order.
	row := b.Msgs[2]
	for i, j := 0, len(row)-1; i < j; i, j = i+1, j-1 {
		row[i], row[j] = row[j], row[i]
	}
	ka := string(a.AppendKey(nil))
	kb := string(b.AppendKey(nil))
	if ka != kb {
		t.Fatal("keys differ under row permutation")
	}
	b.Msgs[2][0].content = 2
	if ka == string(b.AppendKey(nil)) {
		t.Fatal("keys collide for different contents")
	}
}

func TestAppendKeyErrState(t *testing.T) {
	s := &State{Err: true}
	if got := s.AppendKey(nil); len(got) != 1 || got[0] != 0xFF {
		t.Fatalf("error key = %v", got)
	}
}

func TestSetSigSpaceOverride(t *testing.T) {
	p := NewParams(8, 4)
	if p.sigSpace(4) != SigSpace(4) {
		t.Fatal("default sig space should match SigSpace")
	}
	p.SetSigSpace(1) // clamps to 2
	if p.sigSpace(4) != 2 {
		t.Fatalf("override = %d, want 2", p.sigSpace(4))
	}
}

func TestCheckCoherenceBranches(t *testing.T) {
	p := NewParams(8, 4)
	mk := func(rank int32) *State { return InitState(p, rank) }

	t.Run("length-mismatch", func(t *testing.T) {
		if err := CheckCoherence(p, []int32{1}, nil); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("clean", func(t *testing.T) {
		ranks := []int32{1, 2, 3, 4}
		states := []*State{mk(1), mk(2), mk(3), mk(4)}
		if err := CheckCoherence(p, ranks, states); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("top-state", func(t *testing.T) {
		states := []*State{mk(1), {Err: true}}
		if err := CheckCoherence(p, []int32{1, 2}, states); err == nil {
			t.Fatal("⊤ must be incoherent")
		}
	})
	t.Run("two-holders", func(t *testing.T) {
		s1, s2 := mk(1), mk(2)
		if !DuplicateMessageInto(p, 1, s1, 2, s2) {
			t.Fatal("setup failed")
		}
		err := CheckCoherence(p, []int32{1, 2}, []*State{s1, s2})
		if err == nil || !strings.Contains(err.Error(), "two holders") {
			t.Fatalf("want two-holders error, got %v", err)
		}
	})
	t.Run("content-mismatch", func(t *testing.T) {
		s1, s2 := mk(1), mk(2)
		if !TamperForeignMessage(p, 2, s2) {
			t.Fatal("setup failed")
		}
		err := CheckCoherence(p, []int32{1, 2}, []*State{s1, s2})
		if err == nil || !strings.Contains(err.Error(), "governor observation") {
			t.Fatalf("want content-mismatch error, got %v", err)
		}
	})
	t.Run("absent-governor-skipped", func(t *testing.T) {
		// A corrupted message whose governor is outside the bucket must not
		// fail coherence (cross-generation case).
		s2 := mk(2)
		if !TamperForeignMessage(p, 2, s2) {
			t.Fatal("setup failed")
		}
		if err := CheckCoherence(p, []int32{2}, []*State{s2}); err != nil {
			t.Fatalf("absent governor should be skipped: %v", err)
		}
	})
}

func TestClumpRankMessages(t *testing.T) {
	h, err := NewHarness(8, 8, nil, rng.New(1)) // one group of 8
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ClumpRankMessages(1, 0); err == nil {
		t.Fatal("clumping onto the rank's own agent must fail")
	}
	if err := h.ClumpRankMessages(1, 3); err != nil {
		t.Fatal(err)
	}
	idx := h.Params().Partition().RankIdx(1)
	g := 8
	if got := len(h.State(3).Msgs[idx]); got != 2*g*g {
		t.Fatalf("holder has %d rank-1 messages, want %d", got, 2*g*g)
	}
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		if len(h.State(i).Msgs[idx]) != 0 {
			t.Fatalf("agent %d still holds rank-1 messages", i)
		}
	}
	// The multiset is preserved: conservation still holds.
	if err := h.CheckMessageConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestClumpRankMessagesCrossGroup(t *testing.T) {
	h, err := NewHarness(8, 2, nil, rng.New(1)) // 4 groups of 2
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ClumpRankMessages(1, 7); err == nil {
		t.Fatal("cross-group clumping must fail")
	}
}

func TestTamperForeignMessageSingletonGroup(t *testing.T) {
	// r = 1: singleton groups have no foreign rows, so tampering must fail.
	p := NewParams(4, 1)
	s := InitState(p, 2)
	if TamperForeignMessage(p, 2, s) {
		t.Fatal("tampering succeeded in a singleton group")
	}
}

func TestDuplicateMessageIntoCrossGroup(t *testing.T) {
	p := NewParams(8, 2)
	s1, s2 := InitState(p, 1), InitState(p, 8)
	if DuplicateMessageInto(p, 1, s1, 8, s2) {
		t.Fatal("cross-group duplication must fail")
	}
}

func TestNoBalanceKeepsHolders(t *testing.T) {
	p := NewParamsWithRefresh(4, 4, 8)
	p.SetNoBalance(true)
	u, v := InitState(p, 1), InitState(p, 2)
	uBefore := append([]msg(nil), u.Msgs[0]...)
	sc := NewScratch()
	sample := func(int) int { return 0 }
	Interact(p, 1, u, 2, v, sample, sample, sc)
	if len(u.Msgs[0]) != len(uBefore) {
		t.Fatal("noBalance moved messages")
	}
	for i := range uBefore {
		if u.Msgs[0][i].id != uBefore[i].id {
			t.Fatal("noBalance permuted message IDs across agents")
		}
	}
}
