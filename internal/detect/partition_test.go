package detect

import (
	"testing"
	"testing/quick"
)

func TestPartitionBasics(t *testing.T) {
	pt := NewPartition(10, 3)
	if pt.N() != 10 {
		t.Fatalf("N = %d", pt.N())
	}
	// ⌈10/3⌉ = 4 groups with sizes {3,3,2,2}.
	if pt.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d, want 4", pt.NumGroups())
	}
	wantSizes := []int32{3, 3, 2, 2}
	for g, want := range wantSizes {
		if got := pt.GroupSize(int32(g)); got != want {
			t.Errorf("GroupSize(%d) = %d, want %d", g, got, want)
		}
	}
	if pt.GroupStart(0) != 1 || pt.GroupStart(1) != 4 || pt.GroupStart(2) != 7 || pt.GroupStart(3) != 9 {
		t.Fatalf("starts wrong: %v", pt.starts)
	}
}

func TestPartitionOutOfRange(t *testing.T) {
	pt := NewPartition(8, 2)
	for _, rank := range []int32{0, -1, 9, 100} {
		if pt.Group(rank) != -1 {
			t.Errorf("Group(%d) = %d, want -1", rank, pt.Group(rank))
		}
		if pt.SizeOf(rank) != 0 || pt.PosOf(rank) != 0 {
			t.Errorf("SizeOf/PosOf(%d) not degenerate", rank)
		}
		if pt.RankIdx(rank) != -1 {
			t.Errorf("RankIdx(%d) = %d, want -1", rank, pt.RankIdx(rank))
		}
	}
}

func TestPartitionClamping(t *testing.T) {
	if got := NewPartition(8, 0).NumGroups(); got != 8 {
		t.Fatalf("r=0 should clamp to 1: %d groups", got)
	}
	if got := NewPartition(8, 100).NumGroups(); got != 1 {
		t.Fatalf("r>n should clamp to n: %d groups", got)
	}
}

// TestPartitionProperties checks the §3.3 requirements for arbitrary (n, r):
// the groups are a disjoint cover of [1, n], contiguous, with sizes between
// ⌊n/⌈n/r⌉⌋ ≥ max(1, r/2) and r, and the per-rank accessors agree with the
// group layout.
func TestPartitionProperties(t *testing.T) {
	f := func(nRaw, rRaw uint16) bool {
		n := int(nRaw%500) + 2
		r := int(rRaw%uint16(n)) + 1
		pt := NewPartition(n, r)
		covered := 0
		for g := int32(0); g < int32(pt.NumGroups()); g++ {
			size := pt.GroupSize(g)
			if size < 1 || int(size) > r {
				return false
			}
			if 2*int(size) < r && pt.NumGroups() > 1 {
				return false // sizes must stay within [r/2, r]
			}
			start := pt.GroupStart(g)
			for k := int32(0); k < size; k++ {
				rank := start + k
				if pt.Group(rank) != g || pt.PosOf(rank) != k+1 || pt.RankIdx(rank) != k {
					return false
				}
				if pt.SizeOf(rank) != size {
					return false
				}
				covered++
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSameGroup(t *testing.T) {
	pt := NewPartition(10, 5)
	if !pt.SameGroup(1, 5) || pt.SameGroup(5, 6) || pt.SameGroup(0, 1) {
		t.Fatal("SameGroup misclassifies")
	}
}
