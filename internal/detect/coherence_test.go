package detect

import (
	"testing"

	"sspp/internal/rng"
)

// cleanPopulation returns the identity-ranked clean states for (n, r).
func cleanPopulation(t *testing.T, n, r int) (*Params, []int32, []*State) {
	t.Helper()
	p := NewParams(n, r)
	ranks := make([]int32, n)
	states := make([]*State, n)
	for i := range ranks {
		ranks[i] = int32(i + 1)
		states[i] = InitState(p, ranks[i])
	}
	return p, ranks, states
}

// TestCoherentMatchesCheckCoherence pins the allocation-free Coherent to the
// error-reporting CheckCoherence on clean, tampered, and duplicated states.
func TestCoherentMatchesCheckCoherence(t *testing.T) {
	const n, r = 8, 4
	check := func(name string, p *Params, ranks []int32, states []*State, sc *CohScratch) {
		t.Helper()
		want := CheckCoherence(p, ranks, states) == nil
		if got := Coherent(p, ranks, states, sc); got != want {
			t.Fatalf("%s: Coherent = %v, CheckCoherence agrees = %v", name, got, want)
		}
	}
	sc := NewCohScratch()
	p, ranks, states := cleanPopulation(t, n, r)
	check("clean", p, ranks, states, sc)
	if !TamperForeignMessage(p, ranks[0], states[0]) {
		t.Fatal("no foreign message to tamper")
	}
	check("tampered", p, ranks, states, sc)

	p2, ranks2, states2 := cleanPopulation(t, n, r)
	if !DuplicateMessageInto(p2, ranks2[0], states2[0], ranks2[1], states2[1]) {
		t.Fatal("no message to duplicate")
	}
	check("duplicated", p2, ranks2, states2, sc)
}

// TestCohScratchAcrossParams reuses one scratch across two Params with the
// same rank-space size but different partitions: the layout must be rebuilt,
// not silently reused.
func TestCohScratchAcrossParams(t *testing.T) {
	sc := NewCohScratch()
	for _, r := range []int{4, 2, 4} {
		p, ranks, states := cleanPopulation(t, 8, r)
		if !Coherent(p, ranks, states, sc) {
			t.Fatalf("clean population at r=%d judged incoherent with a reused scratch", r)
		}
	}
}

// TestCoherentAgentInTop checks that an agent in ⊤ makes the subpopulation
// incoherent.
func TestCoherentAgentInTop(t *testing.T) {
	p, ranks, states := cleanPopulation(t, 8, 4)
	states[2].Err = true
	if Coherent(p, ranks, states, NewCohScratch()) {
		t.Fatal("population with a ⊤ agent judged coherent")
	}
}

// TestCoherentRepeatedPollsNoAlloc pins the zero-allocation property of the
// steady-state poll.
func TestCoherentRepeatedPollsNoAlloc(t *testing.T) {
	p, ranks, states := cleanPopulation(t, 16, 8)
	sc := NewCohScratch()
	if !Coherent(p, ranks, states, sc) {
		t.Fatal("clean population judged incoherent")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if !Coherent(p, ranks, states, sc) {
			t.Fatal("clean population judged incoherent")
		}
	})
	if allocs != 0 {
		t.Fatalf("Coherent allocated %.1f times per poll, want 0", allocs)
	}
}

// TestCoherentAfterInteractions runs the harness and checks the clean
// population stays coherent under protocol dynamics (restamp + balance).
func TestCoherentAfterInteractions(t *testing.T) {
	const n, r = 8, 4
	h, err := NewHarness(n, r, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sched := rng.New(2)
	sc := NewCohScratch()
	for step := 0; step < 50; step++ {
		for k := 0; k < 100; k++ {
			a, b := sched.Pair(n)
			h.Interact(a, b)
		}
		ranks := make([]int32, n)
		states := make([]*State, n)
		for i := 0; i < n; i++ {
			ranks[i] = h.Rank(i)
			states[i] = h.State(i)
		}
		if !Coherent(h.Params(), ranks, states, sc) {
			t.Fatalf("step %d: clean run became incoherent", step)
		}
	}
}
