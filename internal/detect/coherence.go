// coherence.go provides the allocation-free coherence check used by the
// safe-set predicate. CheckCoherence (harness.go) is the error-reporting
// reference used by tests and tooling; Coherent below is the boolean
// equivalent that the simulation hot path polls, backed by reusable
// epoch-tagged buffers so that repeated polls never allocate.

package detect

// CohScratch holds the reusable buffers of Coherent. One CohScratch serves
// all coherence checks of a single Params' rank space; it grows lazily on
// first use and is reset per call by epoch tagging (no clearing). It is not
// safe for concurrent use.
type CohScratch struct {
	// params identifies the Params the buffers were laid out for; a
	// different Params (even with the same rank-space size but another
	// partition) forces a re-layout.
	params *Params
	// base[rank-1] is the offset of rank's message block within tags; each
	// rank governs a block of 2g² message IDs (g its group size).
	base []int64
	// tags holds per-message epoch marks for the single-holder check.
	tags []uint32
	// obsTag/obs register, per rank, the governor's observation array for
	// the current epoch.
	obsTag []uint32
	obs    [][]int32
	epoch  uint32
}

// NewCohScratch returns an empty coherence scratch.
func NewCohScratch() *CohScratch { return &CohScratch{} }

// prepare sizes the buffers for p's rank space and starts a new epoch.
func (sc *CohScratch) prepare(p *Params) {
	n := p.pt.N()
	if sc.params != p || len(sc.base) != n {
		sc.params = p
		sc.base = make([]int64, n)
		var off int64
		for rank := int32(1); rank <= int32(n); rank++ {
			g := int64(p.pt.SizeOf(rank))
			sc.base[rank-1] = off
			off += 2 * g * g
		}
		sc.tags = make([]uint32, off)
		sc.obsTag = make([]uint32, n)
		sc.obs = make([][]int32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // epoch counter wrapped: clear stale tags once
		clear(sc.tags)
		clear(sc.obsTag)
		sc.epoch = 1
	}
}

// Coherent reports whether the subpopulation's detection layer is coherent:
// every (rank, ID) message has at most one holder within the subpopulation,
// and every message whose governing rank belongs to the subpopulation matches
// that governor's observation. It is the allocation-free equivalent of
// CheckCoherence, with one tightening: a circulating message whose ID lies
// outside its governing rank's ID space [1, 2g²] makes the subpopulation
// incoherent (such a message cannot arise from any clean initialization, and
// CheckMessageConsistency would raise ⊤ on it at the first meeting).
// Agents in ⊤ are incoherent by definition.
func Coherent(p *Params, ranks []int32, states []*State, sc *CohScratch) bool {
	if len(ranks) != len(states) {
		return false
	}
	sc.prepare(p)
	for i, rank := range ranks {
		if states[i].Err {
			return false
		}
		if rank >= 1 && int(rank) <= len(sc.obsTag) {
			sc.obsTag[rank-1] = sc.epoch
			sc.obs[rank-1] = states[i].Obs
		}
	}
	pt := p.pt
	for i, s := range states {
		g := pt.Group(ranks[i])
		if g < 0 {
			continue
		}
		start := pt.GroupStart(g)
		for idx, row := range s.Msgs {
			govRank := start + int32(idx)
			if govRank < 1 || int(govRank) > len(sc.base) {
				return false
			}
			gsz := int64(pt.SizeOf(govRank))
			space := 2 * gsz * gsz
			base := sc.base[govRank-1]
			governed := sc.obsTag[govRank-1] == sc.epoch
			for _, m := range row {
				if m.id < 1 || int64(m.id) > space {
					return false
				}
				off := base + int64(m.id) - 1
				if sc.tags[off] == sc.epoch {
					return false // two holders of one message
				}
				sc.tags[off] = sc.epoch
				if governed && sc.obs[govRank-1][m.id-1] != m.content {
					return false
				}
			}
		}
	}
	return true
}
