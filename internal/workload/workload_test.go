package workload

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func TestKindWireNames(t *testing.T) {
	for _, k := range []Kind{KindTransient, KindInject, KindJoin, KindLeave} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if string(b) != k.String() {
			t.Fatalf("wire name %q vs String %q", b, k)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil || back != k {
			t.Fatalf("round trip of %q: %v, %v", b, back, err)
		}
	}
	if _, err := Kind(9).MarshalText(); err == nil {
		t.Error("unknown kind marshalled")
	}
	var k Kind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("unknown wire name unmarshalled")
	}
}

func TestSortEventsLeavesBeforeJoins(t *testing.T) {
	events := []Event{
		{At: 20, Kind: KindJoin, Seed: 1},
		{At: 10, Kind: KindJoin, Seed: 2},
		{At: 10, Kind: KindTransient, K: 1, Seed: 3},
		{At: 10, Kind: KindLeave, Seed: 4},
		{At: 10, Kind: KindLeave, Seed: 5},
	}
	SortEvents(events)
	want := []uint64{4, 5, 2, 3, 1} // leaves first within t=10, stable otherwise
	for i, ev := range events {
		if ev.Seed != want[i] {
			t.Fatalf("position %d holds seed %d, want %d (schedule %v)", i, ev.Seed, want[i], events)
		}
	}
}

func TestPoissonDeterministicReplacePairs(t *testing.T) {
	p := Poisson{Start: 100, End: 0, Rate: 4, Replace: true, Class: "x", Seed: 7}
	a := p.Events(64, 2000)
	b := p.Events(64, 2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("the arrival process is not deterministic in its seed")
	}
	if len(a) == 0 || len(a)%2 != 0 {
		t.Fatalf("%d events from a replacement process (want a positive even count)", len(a))
	}
	for i := 0; i < len(a); i += 2 {
		l, j := a[i], a[i+1]
		if l.Kind != KindLeave || j.Kind != KindJoin || l.At != j.At {
			t.Fatalf("arrival %d is not a leave+join pair at one instant: %+v, %+v", i/2, l, j)
		}
		if j.Class != "x" {
			t.Fatalf("join class %q, want %q", j.Class, "x")
		}
		if l.At < 100 || l.At >= 2000 {
			t.Fatalf("arrival at %d outside [100, 2000)", l.At)
		}
	}
	if got := (Poisson{Rate: 0, Seed: 7}).Events(64, 2000); got != nil {
		t.Fatalf("zero-rate process emitted %d events", len(got))
	}
}

func TestPoissonJoinFraction(t *testing.T) {
	all := Poisson{End: 0, Rate: 8, JoinFrac: 1, Class: "c", Seed: 3}.Events(32, 4000)
	if len(all) == 0 {
		t.Fatal("no arrivals")
	}
	for _, ev := range all {
		if ev.Kind != KindJoin || ev.Class != "c" {
			t.Fatalf("JoinFrac=1 produced %+v", ev)
		}
	}
	none := Poisson{End: 0, Rate: 8, JoinFrac: 0, Seed: 3}.Events(32, 4000)
	for _, ev := range none {
		if ev.Kind != KindLeave || ev.Class != "" {
			t.Fatalf("JoinFrac=0 produced %+v", ev)
		}
	}
}

func TestBurstsExpansion(t *testing.T) {
	b := Bursts{Start: 50, End: 0, Every: 100, Joins: 2, Leaves: 3, Class: "g", Seed: 9}
	events := b.Events(16, 260)
	// Bursts at 50, 150, 250 — each 3 leaves then 2 joins.
	if len(events) != 15 {
		t.Fatalf("%d events, want 15", len(events))
	}
	for i, at := range []uint64{50, 150, 250} {
		group := events[i*5 : i*5+5]
		for j, ev := range group {
			if ev.At != at {
				t.Fatalf("burst %d event %d at %d, want %d", i, j, ev.At, at)
			}
			wantKind := KindLeave
			if j >= 3 {
				wantKind = KindJoin
			}
			if ev.Kind != wantKind {
				t.Fatalf("burst %d event %d kind %v, want %v", i, j, ev.Kind, wantKind)
			}
		}
	}
	if got := (Bursts{Every: 0, Joins: 1}).Events(16, 260); got != nil {
		t.Fatal("zero-period bursts emitted events")
	}
}

func TestStepExpansion(t *testing.T) {
	up := Step{At: 40, Delta: 3, Class: "s", Seed: 2}.Events(16, 100)
	if len(up) != 3 {
		t.Fatalf("%d events for delta +3", len(up))
	}
	for _, ev := range up {
		if ev.Kind != KindJoin || ev.At != 40 || ev.Class != "s" {
			t.Fatalf("step join event %+v", ev)
		}
	}
	down := Step{At: 40, Delta: -2, Seed: 2}.Events(16, 100)
	if len(down) != 2 || down[0].Kind != KindLeave || down[1].Kind != KindLeave {
		t.Fatalf("step leave events %+v", down)
	}
}

func TestCompileSortsAcrossPhases(t *testing.T) {
	events := Compile([]Phase{
		OneShot{Ev: Event{At: 300, Kind: KindTransient, K: 2, Seed: 1}},
		Bursts{Start: 100, End: 401, Every: 200, Joins: 1, Leaves: 1, Seed: 2},
	}, 16, 1000)
	var last uint64
	for i, ev := range events {
		if ev.At < last {
			t.Fatalf("event %d at %d after %d", i, ev.At, last)
		}
		last = ev.At
	}
	if len(events) != 5 {
		t.Fatalf("%d events, want 5 (bursts at 100 and 300 plus the transient)", len(events))
	}
}

func TestValidateCapabilityTable(t *testing.T) {
	full := Caps{Protocol: "p", Injectable: true, Churnable: true}
	cases := []struct {
		name    string
		events  []Event
		n0      int
		caps    Caps
		wantErr string
	}{
		{"ok mixed", []Event{
			{At: 10, Kind: KindTransient, K: 2},
			{At: 20, Kind: KindLeave}, {At: 20, Kind: KindJoin},
			{At: 30, Kind: KindInject, Class: "c"},
		}, 8, full, ""},
		{"unsorted", []Event{{At: 20, Kind: KindJoin}, {At: 10, Kind: KindLeave}}, 8, full, "not sorted"},
		{"transient needs injectable", []Event{{At: 1, Kind: KindTransient, K: 1}}, 8,
			Caps{Protocol: "p", Churnable: true}, "injectable capability"},
		{"inject needs injectable", []Event{{At: 1, Kind: KindInject}}, 8,
			Caps{Protocol: "p", Churnable: true}, "injectable capability"},
		{"transient size", []Event{{At: 1, Kind: KindTransient, K: 0}}, 8, full, "size 0 < 1"},
		{"churn needs churnable", []Event{{At: 1, Kind: KindJoin}}, 8,
			Caps{Protocol: "p", Injectable: true}, "churnable capability"},
		{"below minimum", []Event{{At: 1, Kind: KindLeave}}, 2, full, "requires at least"},
		{"above maximum", []Event{{At: 1, Kind: KindJoin}}, 8,
			Caps{Protocol: "p", Churnable: true, MinN: 2, MaxN: 8}, "at most 8 agents"},
		{"replacement pair ok", []Event{{At: 1, Kind: KindLeave}, {At: 1, Kind: KindJoin}}, 8,
			Caps{Protocol: "p", Churnable: true, MinN: 8, MaxN: 8}, ""},
		{"replacement hint", []Event{{At: 1, Kind: KindLeave}}, 8,
			Caps{Protocol: "p", Churnable: true, MinN: 8, MaxN: 8}, "replacement churn only"},
		{"unknown kind", []Event{{At: 1, Kind: Kind(9)}}, 8, full, "unknown event kind"},
	}
	for _, c := range cases {
		err := Validate(c.events, c.n0, c.caps)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

func TestUsesFaultsAndChurn(t *testing.T) {
	faults := []Event{{Kind: KindTransient, K: 1}, {Kind: KindInject}}
	churn := []Event{{Kind: KindJoin}, {Kind: KindLeave}}
	if !UsesFaults(faults) || UsesFaults(churn) {
		t.Error("UsesFaults misclassifies")
	}
	if !UsesChurn(churn) || UsesChurn(faults) {
		t.Error("UsesChurn misclassifies")
	}
}

// unknownPhase exercises the conservative default of PhasesUse.
type unknownPhase struct{}

func (unknownPhase) Events(int, uint64) []Event { return nil }

func TestPhasesUse(t *testing.T) {
	cases := []struct {
		name          string
		phases        []Phase
		faults, churn bool
	}{
		{"transient", []Phase{OneShot{Ev: Event{Kind: KindTransient}}}, true, false},
		{"inject", []Phase{OneShot{Ev: Event{Kind: KindInject}}}, true, false},
		{"join", []Phase{OneShot{Ev: Event{Kind: KindJoin}}}, false, true},
		{"poisson", []Phase{Poisson{Rate: 1}}, false, true},
		{"bursts", []Phase{Bursts{Every: 1, Joins: 1}}, false, true},
		{"step", []Phase{Step{Delta: 1}}, false, true},
		{"mixed", []Phase{OneShot{Ev: Event{Kind: KindTransient}}, Step{Delta: 1}}, true, true},
		{"unknown", []Phase{unknownPhase{}}, true, true},
	}
	for _, c := range cases {
		faults, churn := PhasesUse(c.phases)
		if faults != c.faults || churn != c.churn {
			t.Errorf("%s: PhasesUse = (%v, %v), want (%v, %v)", c.name, faults, churn, c.faults, c.churn)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Version:  TraceVersion,
		Protocol: "ciw",
		N:        4,
		Steps:    2,
		Pairs:    []int32{0, 1, 2, 3},
		Keys:     []uint64{1, 2, 1, 3},
		Events: []TraceEvent{
			{Event: Event{At: 1, Kind: KindJoin, Class: "c", Seed: 5},
				Deltas: []KeyDelta{{Key: 1, Delta: 1}}, NAfter: 5},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", tr, back)
	}
}

func TestTraceValidate(t *testing.T) {
	base := func() Trace {
		return Trace{Version: TraceVersion, Protocol: "p", N: 4, Steps: 1, Pairs: []int32{0, 1}}
	}
	cases := []struct {
		name    string
		mutate  func(*Trace)
		wantErr string
	}{
		{"future version", func(tr *Trace) { tr.Version = 2 }, "version 2"},
		{"tiny population", func(tr *Trace) { tr.N = 1 }, "population 1"},
		{"pair count", func(tr *Trace) { tr.Pairs = tr.Pairs[:1] }, "pair entries"},
		{"edge count", func(tr *Trace) { tr.Topology = "ring"; tr.Pairs = nil }, "edge entries"},
		{"key count", func(tr *Trace) { tr.Keys = []uint64{1} }, "key entries"},
		{"event past end", func(tr *Trace) {
			tr.Events = []TraceEvent{{Event: Event{At: 9}}}
		}, "past the"},
		{"events out of order", func(tr *Trace) {
			tr.Steps, tr.Pairs = 2, []int32{0, 1, 2, 3}
			tr.Events = []TraceEvent{{Event: Event{At: 2}}, {Event: Event{At: 1}}}
		}, "out of order"},
	}
	for _, c := range cases {
		tr := base()
		c.mutate(&tr)
		if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

// FuzzValidateSchedule: Validate must never panic and must be deterministic,
// whatever schedule and capability set it is handed; accepted schedules are
// sorted and never let the population walk below two agents at a group
// boundary.
func FuzzValidateSchedule(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 0}, 8, byte(3))
	f.Add([]byte{3, 0, 0, 0, 2, 1, 0, 0, 3, 0, 0, 0, 3, 0, 0, 0}, 4, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, n0 int, capBits byte) {
		var events []Event
		for len(data) >= 8 {
			chunk := data[:8]
			data = data[8:]
			events = append(events, Event{
				At:    uint64(binary.LittleEndian.Uint16(chunk[0:2])),
				Kind:  Kind(chunk[2] % 6), // includes invalid kinds 4 and 5
				K:     int(int8(chunk[3])),
				Class: string(rune('a' + chunk[4]%3)),
				Seed:  uint64(binary.LittleEndian.Uint16(chunk[6:8])),
			})
		}
		caps := Caps{
			Protocol:   "fuzz",
			Injectable: capBits&1 != 0,
			Churnable:  capBits&2 != 0,
			MinN:       int(capBits >> 2 & 3),
			MaxN:       int(capBits >> 4 & 15),
		}
		err1 := Validate(events, n0, caps)
		if err2 := Validate(events, n0, caps); (err1 == nil) != (err2 == nil) {
			t.Fatal("Validate is not deterministic")
		}
		if err1 != nil {
			return
		}
		n := n0
		for i, ev := range events {
			if i > 0 && ev.At < events[i-1].At {
				t.Fatalf("accepted schedule unsorted at %d", i)
			}
			switch ev.Kind {
			case KindJoin:
				n++
			case KindLeave:
				n--
			}
			if i+1 == len(events) || events[i+1].At != ev.At {
				if n < 2 {
					t.Fatalf("accepted schedule drains the population to %d at %d", n, ev.At)
				}
			}
		}
	})
}

// FuzzTraceDecode: arbitrary bytes never panic the trace decoder, and
// anything it accepts passes Validate and re-encodes.
func FuzzTraceDecode(f *testing.F) {
	var seedBuf bytes.Buffer
	seed := &Trace{Version: TraceVersion, Protocol: "p", N: 4, Steps: 1, Pairs: []int32{0, 1}}
	if err := seed.Encode(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"version":1,"n":2,"steps":0,"events":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", err)
		}
		if err := tr.Encode(&bytes.Buffer{}); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
	})
}
