// Package workload implements the dynamic half of the robustness model:
// time-varying schedules of mid-run disruption — transient fault bursts,
// whole-population adversary-class re-injections, and population churn
// (agents joining and leaving) under configurable arrival processes. A
// schedule compiles a list of timed phases into a flat, validated event
// list the run engine fires at exact interaction counts, and the trace
// format (trace.go) records everything a run did — schedule, churn, faults
// — so the workload replays bit-exactly across backends.
//
// Self-stabilization (Theorem 1.1 of the source paper) is pitched as
// robustness to arbitrary disruption; this package supplies the *ongoing*
// disruption regime — recovery under churn, not just after a single burst —
// where the paper's trade-off (and the related Burman et al. / Sudo
// trade-offs) actually earns its keep.
package workload

import (
	"fmt"
	"math"
	"sort"

	"sspp/internal/rng"
)

// Kind identifies one scheduled event type.
type Kind uint8

const (
	// KindTransient corrupts K uniformly chosen agents in place (the
	// InjectTransient fault model).
	KindTransient Kind = iota
	// KindInject rewrites the whole configuration according to the adversary
	// class named by Class (a mid-run re-injection).
	KindInject
	// KindJoin adds one agent, entering in the Class-chosen state.
	KindJoin
	// KindLeave removes one uniformly chosen agent.
	KindLeave
)

// kindNames maps kinds to their wire names.
var kindNames = [...]string{
	KindTransient: "transient",
	KindInject:    "inject",
	KindJoin:      "join",
	KindLeave:     "leave",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText renders the kind as its wire name (JSON-friendly).
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("workload: unknown event kind %d", uint8(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText parses a wire name back into a kind.
func (k *Kind) UnmarshalText(b []byte) error {
	for i, name := range kindNames {
		if name == string(b) {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("workload: unknown event kind %q", b)
}

// Event is one scheduled disruption, fired when the run reaches interaction
// At (counted from the start of the Run call). Events at the same instant
// fire consecutively, leaves before joins, with no interactions in between.
type Event struct {
	// At is the interaction count the event fires at.
	At uint64 `json:"at"`
	// Kind selects the event type.
	Kind Kind `json:"kind"`
	// K is the burst size of KindTransient events.
	K int `json:"k,omitempty"`
	// Class names the adversary class of KindInject and KindJoin events
	// ("" is the clean join state for joins).
	Class string `json:"class,omitempty"`
	// Seed seeds the event's randomness (victim choices, join states).
	Seed uint64 `json:"seed"`
}

// Phase generates part of a schedule: a one-shot event or a whole arrival
// process expanded against the initial population size and the run horizon.
type Phase interface {
	// Events returns the phase's events for an initial population of n0
	// agents and a run horizon (interaction budget) of horizon. The result
	// need not be sorted; Compile sorts the full schedule.
	Events(n0 int, horizon uint64) []Event
}

// OneShot is a Phase firing a single literal event.
type OneShot struct {
	Ev Event
}

// Events returns the single event.
func (o OneShot) Events(int, uint64) []Event { return []Event{o.Ev} }

// Poisson is a churn arrival process: events arrive with exponential gaps at
// an expected Rate events per n0 interactions (i.e. per unit of parallel
// time), from Start until End (End 0 means the run horizon). Each arrival is
// a join with probability JoinFrac and a leave otherwise — or, with Replace,
// a leave and a join at the same instant, keeping n constant (the
// replacement-churn model of fixed-capacity systems, and the only churn
// shape protocols with equal ChurnBounds accept). Rate changes over time are
// expressed by chaining several Poisson phases with different rates.
type Poisson struct {
	Start, End uint64
	// Rate is the expected number of arrivals per n0 interactions.
	Rate float64
	// JoinFrac is the per-arrival join probability (ignored under Replace).
	JoinFrac float64
	// Replace pairs every leave with a join at the same instant.
	Replace bool
	// Class is the state class joining agents enter in.
	Class string
	// Seed derives the arrival times, the join/leave coin and the per-event
	// seeds; the process is deterministic in (Seed, n0, horizon).
	Seed uint64
}

// Events expands the arrival process.
func (p Poisson) Events(n0 int, horizon uint64) []Event {
	end := p.End
	if end == 0 || end > horizon {
		end = horizon
	}
	if p.Rate <= 0 || n0 <= 0 || p.Start >= end {
		return nil
	}
	src := rng.New(p.Seed)
	mean := float64(n0) / p.Rate // expected gap in interactions
	var out []Event
	t := float64(p.Start)
	for {
		u := 1 - src.Float64() // (0, 1]
		t += -math.Log(u) * mean
		if t >= float64(end) {
			return out
		}
		at := uint64(t)
		if p.Replace {
			out = append(out,
				Event{At: at, Kind: KindLeave, Seed: src.Uint64()},
				Event{At: at, Kind: KindJoin, Class: p.Class, Seed: src.Uint64()})
			continue
		}
		kind := KindLeave
		if src.Float64() < p.JoinFrac {
			kind = KindJoin
		}
		ev := Event{At: at, Kind: kind, Seed: src.Uint64()}
		if kind == KindJoin {
			ev.Class = p.Class
		}
		out = append(out, ev)
	}
}

// Bursts is a periodic churn process: every Every interactions from Start
// until End (End 0 means the run horizon), Leaves agents leave and Joins
// agents join, all at the same instant.
type Bursts struct {
	Start, End, Every uint64
	Joins, Leaves     int
	Class             string
	Seed              uint64
}

// Events expands the periodic bursts.
func (b Bursts) Events(_ int, horizon uint64) []Event {
	end := b.End
	if end == 0 || end > horizon {
		end = horizon
	}
	if b.Every == 0 || b.Start >= end || (b.Joins <= 0 && b.Leaves <= 0) {
		return nil
	}
	src := rng.New(b.Seed)
	var out []Event
	for at := b.Start; at < end; at += b.Every {
		for i := 0; i < b.Leaves; i++ {
			out = append(out, Event{At: at, Kind: KindLeave, Seed: src.Uint64()})
		}
		for i := 0; i < b.Joins; i++ {
			out = append(out, Event{At: at, Kind: KindJoin, Class: b.Class, Seed: src.Uint64()})
		}
	}
	return out
}

// Step is a one-shot population step: at interaction At, Delta agents join
// (Delta > 0) or leave (Delta < 0), all at the same instant.
type Step struct {
	At    uint64
	Delta int
	Class string
	Seed  uint64
}

// Events expands the step.
func (s Step) Events(int, uint64) []Event {
	src := rng.New(s.Seed)
	var out []Event
	for i := 0; i < -s.Delta; i++ {
		out = append(out, Event{At: s.At, Kind: KindLeave, Seed: src.Uint64()})
	}
	for i := 0; i < s.Delta; i++ {
		out = append(out, Event{At: s.At, Kind: KindJoin, Class: s.Class, Seed: src.Uint64()})
	}
	return out
}

// Compile expands every phase against (n0, horizon) and returns the full
// schedule sorted by firing time. The sort is stable and leaves precede
// joins within an instant, so replacement-churn pairs stay adjacent and a
// vacated slot always exists before its join fires.
func Compile(phases []Phase, n0 int, horizon uint64) []Event {
	var events []Event
	for _, p := range phases {
		events = append(events, p.Events(n0, horizon)...)
	}
	SortEvents(events)
	return events
}

// SortEvents sorts a schedule in firing order: by time, stably, with leaves
// preceding joins within an instant (so a replacement pair's vacancy exists
// before its join fires); other kinds keep their insertion order.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		li := events[i].Kind == KindLeave
		lj := events[j].Kind == KindLeave
		return li && !lj
	})
}

// Caps describes what the running protocol can absorb; Validate checks a
// schedule against it — the capability-table contract extended to the
// dynamic model.
type Caps struct {
	// Protocol names the protocol for error messages.
	Protocol string
	// Injectable reports the injectable capability (transient bursts and
	// re-injections).
	Injectable bool
	// Churnable reports churn support (agent-level Churnable, or a
	// count-based model with churn hooks).
	Churnable bool
	// MinN and MaxN are the protocol's churn bounds (MaxN 0 = unbounded).
	// Equal bounds declare replacement churn only.
	MinN, MaxN int
}

// Validate checks a compiled schedule against the protocol's capabilities
// and walks the population trajectory it implies from n0: every event group
// (the events sharing one instant) must leave the population within the
// protocol's churn bounds, and mid-group the population may dip (leaves
// apply first) but never below 1. Invalid schedules are rejected up front so
// a run never fires a disruption its protocol cannot absorb.
func Validate(events []Event, n0 int, caps Caps) error {
	n := n0
	minN := caps.MinN
	if minN < 2 {
		minN = 2
	}
	for i, ev := range events {
		if i > 0 && ev.At < events[i-1].At {
			return fmt.Errorf("workload: schedule not sorted (event %d at %d after %d)", i, ev.At, events[i-1].At)
		}
		switch ev.Kind {
		case KindTransient:
			if !caps.Injectable {
				return fmt.Errorf("workload: transient faults require the injectable capability, which protocol %q lacks (see the capability table, DESIGN.md §9)", caps.Protocol)
			}
			if ev.K < 1 {
				return fmt.Errorf("workload: transient burst at %d has size %d < 1", ev.At, ev.K)
			}
		case KindInject:
			if !caps.Injectable {
				return fmt.Errorf("workload: re-injections require the injectable capability, which protocol %q lacks (see the capability table, DESIGN.md §9)", caps.Protocol)
			}
		case KindJoin, KindLeave:
			if !caps.Churnable {
				return fmt.Errorf("workload: churn requires the churnable capability, which protocol %q lacks (see the capability table, DESIGN.md §10)", caps.Protocol)
			}
			if ev.Kind == KindLeave {
				n--
				if n < 1 {
					return fmt.Errorf("workload: leave at %d empties the population", ev.At)
				}
			} else {
				n++
			}
		default:
			return fmt.Errorf("workload: unknown event kind %d at %d", uint8(ev.Kind), ev.At)
		}
		// Bounds are enforced at event-group boundaries: replacement-churn
		// protocols (MinN == MaxN) accept a leave only when a join restores n
		// at the same instant.
		if i+1 == len(events) || events[i+1].At != ev.At {
			if n < minN {
				return fmt.Errorf("workload: population drops to %d after the events at %d (protocol %q requires at least %d agents%s)",
					n, ev.At, caps.Protocol, minN, replacementHint(caps))
			}
			if caps.MaxN > 0 && n > caps.MaxN {
				return fmt.Errorf("workload: population grows to %d after the events at %d (protocol %q supports at most %d agents%s)",
					n, ev.At, caps.Protocol, caps.MaxN, replacementHint(caps))
			}
		}
	}
	return nil
}

// replacementHint annotates bound errors for replacement-churn protocols.
func replacementHint(caps Caps) string {
	if caps.Churnable && caps.MinN == caps.MaxN && caps.MaxN > 0 {
		return "; it supports replacement churn only — pair every leave with a join at the same instant"
	}
	return ""
}

// PhasesUse reports, without expanding any arrival process, whether the
// phases can emit fault events (transient bursts, re-injections) and churn
// events (joins, leaves) — the static capability footprint grid validation
// checks before any trial runs. Unknown phase types count as both,
// conservatively.
func PhasesUse(phases []Phase) (faults, churn bool) {
	for _, p := range phases {
		switch ph := p.(type) {
		case OneShot:
			switch ph.Ev.Kind {
			case KindTransient, KindInject:
				faults = true
			case KindJoin, KindLeave:
				churn = true
			}
		case Poisson, Bursts, Step:
			churn = true
		default:
			faults, churn = true, true
		}
	}
	return faults, churn
}

// UsesFaults reports whether the schedule contains transient bursts or
// re-injections.
func UsesFaults(events []Event) bool {
	for _, ev := range events {
		if ev.Kind == KindTransient || ev.Kind == KindInject {
			return true
		}
	}
	return false
}

// UsesChurn reports whether the schedule contains joins or leaves.
func UsesChurn(events []Event) bool {
	for _, ev := range events {
		if ev.Kind == KindJoin || ev.Kind == KindLeave {
			return true
		}
	}
	return false
}
