// trace.go defines the versioned workload trace: everything one run did —
// the interaction schedule (explicit pairs, or edge indices into a named
// interaction graph, the superset of the scheduler Recording format), the
// pre-interaction state keys, and the scheduled events with their exact
// effect on the state multiset — so a recorded workload replays bit-exactly
// on either backend. The agent backend replays the pairs and re-fires the
// events from their seeds; the count-based backend replays the state-key
// pairs and applies the recorded count deltas, reproducing the identical
// final multiset without agent identities.

package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceVersion identifies the trace wire layout. Version 1 is the first.
const TraceVersion = 1

// KeyDelta is one state-count change of an event: Delta agents entered
// (positive) or left (negative) state Key.
type KeyDelta struct {
	Key   uint64 `json:"key"`
	Delta int64  `json:"delta"`
}

// TraceEvent is one fired event with its recorded effect.
type TraceEvent struct {
	Event
	// Deltas is the event's exact effect on the state multiset (census diff
	// across the event, sorted by key). Replay applies it instead of
	// re-drawing the event's randomness, which is what makes churn and
	// faults replay bit-exactly on the count-based backend.
	Deltas []KeyDelta `json:"deltas"`
	// NAfter is the population size after the event.
	NAfter int `json:"n_after"`
}

// Trace is one recorded workload run.
type Trace struct {
	// Version stamps the wire layout (TraceVersion).
	Version int `json:"version"`
	// Protocol names the protocol the trace was recorded from; replay
	// requires the same protocol (the state-key encoding is per-protocol).
	Protocol string `json:"protocol"`
	// N is the initial population size.
	N int `json:"n"`
	// Steps is the number of interactions executed.
	Steps uint64 `json:"steps"`
	// Topology names the interaction graph of edge-indexed traces (""
	// for the complete topology, which stores explicit pairs).
	Topology string `json:"topology,omitempty"`
	// Pairs holds the dealt agent pairs, two entries per interaction.
	Pairs []int32 `json:"pairs,omitempty"`
	// Edges holds edge indices into the named topology's graph, one entry
	// per interaction (the edge-index mode of the Recording format).
	Edges []int32 `json:"edges,omitempty"`
	// Keys holds the pre-interaction state keys of the dealt agents, two
	// entries per interaction — the count-based replay schedule.
	Keys []uint64 `json:"keys,omitempty"`
	// Events holds the fired events in firing order.
	Events []TraceEvent `json:"events"`
}

// Validate checks the trace's internal consistency.
func (t *Trace) Validate() error {
	if t.Version != TraceVersion {
		return fmt.Errorf("workload: trace version %d, this build reads version %d", t.Version, TraceVersion)
	}
	if t.N < 2 {
		return fmt.Errorf("workload: trace population %d < 2", t.N)
	}
	if t.Topology == "" && uint64(len(t.Pairs)) != 2*t.Steps {
		return fmt.Errorf("workload: trace has %d steps but %d pair entries", t.Steps, len(t.Pairs))
	}
	if t.Topology != "" && uint64(len(t.Edges)) != t.Steps {
		return fmt.Errorf("workload: trace has %d steps but %d edge entries", t.Steps, len(t.Edges))
	}
	if len(t.Keys) > 0 && uint64(len(t.Keys)) != 2*t.Steps {
		return fmt.Errorf("workload: trace has %d steps but %d key entries", t.Steps, len(t.Keys))
	}
	var last uint64
	for i, ev := range t.Events {
		if ev.At > t.Steps {
			return fmt.Errorf("workload: trace event %d fires at %d past the %d executed steps", i, ev.At, t.Steps)
		}
		if ev.At < last {
			return fmt.Errorf("workload: trace events out of order at index %d", i)
		}
		last = ev.At
	}
	return nil
}

// Encode writes the trace as JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Decode reads a JSON trace and validates it, rejecting future versions
// rather than silently misreading them.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
