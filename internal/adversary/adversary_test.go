package adversary

import (
	"math"
	"testing"

	"sspp/internal/core"
	"sspp/internal/rng"
)

func build(t *testing.T, n, r int, seed uint64) *core.Protocol {
	t.Helper()
	p, err := core.New(n, r, core.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDescribeAndClasses(t *testing.T) {
	if len(Classes()) != 12 {
		t.Fatalf("Classes() = %d entries", len(Classes()))
	}
	for _, c := range Classes() {
		if Describe(c) == "unknown class" {
			t.Errorf("class %q lacks a description", c)
		}
	}
	if Describe(Class("nope")) != "unknown class" {
		t.Fatal("unknown class must say so")
	}
}

func TestApplyUnknownClass(t *testing.T) {
	p := build(t, 8, 2, 1)
	if err := Apply(p, Class("nope"), rng.New(1)); err == nil {
		t.Fatal("unknown class must error")
	}
}

func TestClassShapes(t *testing.T) {
	const n, r = 16, 4
	rr := rng.New(7)

	t.Run("triggered", func(t *testing.T) {
		p := build(t, n, r, 1)
		if err := Apply(p, ClassTriggered, rr); err != nil {
			t.Fatal(err)
		}
		resetting, _, _ := p.Roles()
		if resetting != n {
			t.Fatalf("resetting = %d, want %d", resetting, n)
		}
	})

	t.Run("two-leaders", func(t *testing.T) {
		p := build(t, n, r, 2)
		if err := Apply(p, ClassTwoLeaders, rr); err != nil {
			t.Fatal(err)
		}
		if got := p.Leaders(); got != 2 {
			t.Fatalf("leaders = %d, want 2", got)
		}
		if p.CorrectRanking() {
			t.Fatal("two leaders cannot be a correct ranking")
		}
	})

	t.Run("no-leader", func(t *testing.T) {
		p := build(t, n, r, 3)
		if err := Apply(p, ClassNoLeader, rr); err != nil {
			t.Fatal(err)
		}
		if got := p.Leaders(); got != 0 {
			t.Fatalf("leaders = %d, want 0", got)
		}
	})

	t.Run("mixed-generations", func(t *testing.T) {
		p := build(t, n, r, 4)
		if err := Apply(p, ClassMixedGenerations, rr); err != nil {
			t.Fatal(err)
		}
		if !p.AllVerifiers() || !p.CorrectRanking() {
			t.Fatal("class must produce correctly ranked verifiers")
		}
		if len(p.Generations()) < 2 {
			t.Skip("random draw produced a single generation (rare)")
		}
	})

	t.Run("corrupt-messages", func(t *testing.T) {
		p := build(t, n, r, 5)
		if err := Apply(p, ClassCorruptMessages, rr); err != nil {
			t.Fatal(err)
		}
		if !p.CorrectRanking() {
			t.Fatal("corruption must not touch the ranking")
		}
	})

	t.Run("stuck-rankers", func(t *testing.T) {
		p := build(t, n, r, 6)
		if err := Apply(p, ClassStuckRankers, rr); err != nil {
			t.Fatal(err)
		}
		_, rankers, _ := p.Roles()
		if rankers != n {
			t.Fatalf("rankers = %d, want %d", rankers, n)
		}
	})
}

func TestExpectsRankingPreserved(t *testing.T) {
	if !ExpectsRankingPreserved(ClassCorruptMessages) || !ExpectsRankingPreserved(ClassDuplicateMessages) {
		t.Fatal("message-layer faults must preserve the ranking")
	}
	if ExpectsRankingPreserved(ClassTwoLeaders) {
		t.Fatal("rank faults cannot preserve the ranking")
	}
}

// TestRecoveryFromEveryClass is the integration heart of the reproduction:
// from every adversarial class, ElectLeader_r reaches the safe set within
// the Theorem 1.1 budget; classes whose faults are confined to the detection
// layer must additionally keep the ranking intact.
func TestRecoveryFromEveryClass(t *testing.T) {
	const n, r = 16, 4
	bound := uint64(800 * float64(n*n) / float64(r) * math.Log(n))
	for ci, class := range Classes() {
		class := class
		t.Run(string(class), func(t *testing.T) {
			seed := uint64(ci) + 100
			p := build(t, n, r, seed)
			if err := Apply(p, class, rng.New(seed)); err != nil {
				t.Fatalf("apply: %v", err)
			}
			var ranksBefore []int32
			if ExpectsRankingPreserved(class) {
				ranksBefore = make([]int32, n)
				for i := 0; i < n; i++ {
					ranksBefore[i] = p.RankOutput(i)
				}
			}
			took, ok := p.RunToSafeSet(rng.New(seed+1), bound)
			if !ok {
				t.Fatalf("no safe set within %d interactions (took %d)", bound, took)
			}
			if ranksBefore != nil {
				for i := 0; i < n; i++ {
					if p.RankOutput(i) != ranksBefore[i] {
						t.Fatalf("agent %d rank changed %d -> %d (hard reset on message-only fault)",
							i, ranksBefore[i], p.RankOutput(i))
					}
				}
			}
		})
	}
}
