// Package adversary builds the adversarial starting configurations used to
// exercise self-stabilization. Self-stabilizing correctness (Theorem 1.1)
// quantifies over every type-valid configuration; the classes below cover
// the recovery hierarchy ℰ₀ ⊃ ℰ₁ ⊃ … ⊃ ℰ₅ of Lemma 6.3 plus the canonical
// failure modes (two leaders, no leader, corrupted or duplicated messages),
// each landing the population in a specific rung of the ladder.
//
// All generators use only the type-valid mutators of internal/core, so the
// §5.1 state restriction always holds — exactly the set of configurations
// the paper's analysis quantifies over.
package adversary

import (
	"fmt"

	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/verify"
)

// Class identifies an adversarial configuration generator.
type Class string

// The supported configuration classes.
const (
	// ClassCleanRankers: all agents fresh rankers (the post-awakening
	// configuration; baseline for Lemma 6.2 measurements).
	ClassCleanRankers Class = "clean-rankers"
	// ClassTriggered: all agents freshly triggered resetters (a triggered
	// configuration, Lemma 6.2's starting point).
	ClassTriggered Class = "triggered"
	// ClassMixedRoles: random mix of resetters (random counters), rankers
	// (random countdowns) and verifiers (random ranks) — a generic ℰ₀
	// configuration.
	ClassMixedRoles Class = "mixed-roles"
	// ClassStuckRankers: all rankers with nearly-expired countdowns, so the
	// population is forced through the ℰ₁→ℰ₂ transition with an incomplete
	// ranking.
	ClassStuckRankers Class = "stuck-rankers"
	// ClassMixedGenerations: verifiers with a correct ranking but
	// generations scattered over ℤ₆ (ℰ₂ \ ℰ₃).
	ClassMixedGenerations Class = "mixed-generations"
	// ClassProbationSkew: verifiers, correct ranking, one generation, but
	// random positive probation timers (ℰ₃ \ ℰ₄).
	ClassProbationSkew Class = "probation-skew"
	// ClassTwoLeaders: correct-looking verifiers except two agents claim
	// rank 1 (ℰ₄ \ ℰ₅; the canonical duplicate-leader fault).
	ClassTwoLeaders Class = "two-leaders"
	// ClassNoLeader: no agent holds rank 1 (some other rank duplicated).
	ClassNoLeader Class = "no-leader"
	// ClassDuplicateRanks: k random ranks duplicated among verifiers.
	ClassDuplicateRanks Class = "duplicate-ranks"
	// ClassCorruptMessages: correct ranking, zero probation, but several
	// circulating messages corrupted — the soft-reset scenario of §3.2.
	ClassCorruptMessages Class = "corrupt-messages"
	// ClassDuplicateMessages: correct ranking but duplicated circulating
	// messages (two holders of one (rank, ID)).
	ClassDuplicateMessages Class = "duplicate-messages"
	// ClassRandomGarbage: every field randomized through the type-valid
	// mutators — the closest generator to "arbitrary configuration".
	ClassRandomGarbage Class = "random-garbage"
)

// Classes returns all supported classes in a stable order.
func Classes() []Class {
	return []Class{
		ClassCleanRankers,
		ClassTriggered,
		ClassMixedRoles,
		ClassStuckRankers,
		ClassMixedGenerations,
		ClassProbationSkew,
		ClassTwoLeaders,
		ClassNoLeader,
		ClassDuplicateRanks,
		ClassCorruptMessages,
		ClassDuplicateMessages,
		ClassRandomGarbage,
	}
}

// Describe returns a one-line description of the class.
func Describe(c Class) string {
	switch c {
	case ClassCleanRankers:
		return "all agents fresh rankers (post-awakening)"
	case ClassTriggered:
		return "all agents triggered resetters (Lemma 6.2 start)"
	case ClassMixedRoles:
		return "random roles, counters and ranks (generic E0)"
	case ClassStuckRankers:
		return "rankers with nearly-expired countdowns (E1\\E2)"
	case ClassMixedGenerations:
		return "verifiers with generations scattered over Z6 (E2\\E3)"
	case ClassProbationSkew:
		return "verifiers with random positive probation timers (E3\\E4)"
	case ClassTwoLeaders:
		return "two agents claim rank 1 (E4\\E5)"
	case ClassNoLeader:
		return "no agent holds rank 1 (duplicate elsewhere)"
	case ClassDuplicateRanks:
		return "several random rank collisions among verifiers"
	case ClassCorruptMessages:
		return "correct ranking, corrupted circulating messages (soft-reset case)"
	case ClassDuplicateMessages:
		return "correct ranking, duplicated circulating messages"
	case ClassRandomGarbage:
		return "everything randomized (arbitrary configuration proxy)"
	default:
		return "unknown class"
	}
}

// ExpectsRankingPreserved reports whether recovery from the class must keep
// the initial ranking intact (no hard reset) — true exactly for the classes
// whose ranking is correct and whose faults live only in the detection layer.
func ExpectsRankingPreserved(c Class) bool {
	return c == ClassCorruptMessages || c == ClassDuplicateMessages
}

// Apply rewrites p's configuration in place according to class, drawing any
// needed randomness from r.
func Apply(p *core.Protocol, class Class, r *rng.PRNG) error {
	n := p.N()
	switch class {
	case ClassCleanRankers:
		for i := 0; i < n; i++ {
			p.ForceRanker(i)
		}
	case ClassTriggered:
		for i := 0; i < n; i++ {
			p.ForceTriggered(i)
		}
	case ClassMixedRoles:
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				p.ForceTriggered(i)
			case 1:
				p.ForceDormant(i, int32(1+r.Intn(int(p.Constants().Reset.DMax))))
			case 2:
				p.ForceRanker(i)
				p.SetCountdown(i, int32(r.Intn(int(p.Constants().CountdownMax))))
			default:
				p.ForceVerifier(i, int32(1+r.Intn(n)))
				p.SetProbation(i, int32(r.Intn(int(p.Constants().PMax))))
				p.SetGeneration(i, uint8(r.Intn(verify.Generations)))
			}
		}
	case ClassStuckRankers:
		for i := 0; i < n; i++ {
			p.ForceRanker(i)
			p.SetCountdown(i, int32(1+r.Intn(4)))
		}
	case ClassMixedGenerations:
		applyPermutation(p, r)
		for i := 0; i < n; i++ {
			p.SetGeneration(i, uint8(r.Intn(verify.Generations)))
			p.SetProbation(i, 0)
		}
	case ClassProbationSkew:
		applyPermutation(p, r)
		for i := 0; i < n; i++ {
			p.SetProbation(i, int32(1+r.Intn(int(p.Constants().PMax))))
		}
	case ClassTwoLeaders:
		applyPermutation(p, r)
		// Give the rank-2 holder a second rank-1 claim.
		for i := 0; i < n; i++ {
			if p.Agent(i).Rank == 2 {
				p.ForceVerifier(i, 1)
				break
			}
		}
		zeroProbation(p)
	case ClassNoLeader:
		applyPermutation(p, r)
		for i := 0; i < n; i++ {
			if p.Agent(i).Rank == 1 {
				p.ForceVerifier(i, 2)
				break
			}
		}
		zeroProbation(p)
	case ClassDuplicateRanks:
		applyPermutation(p, r)
		k := 1 + r.Intn(3)
		for d := 0; d < k; d++ {
			i, j := r.Pair(n)
			p.ForceVerifier(i, p.Agent(j).Rank)
		}
		zeroProbation(p)
	case ClassCorruptMessages:
		applyPermutation(p, r)
		zeroProbation(p)
		corrupted := 0
		for attempts := 0; attempts < 4*n && corrupted < 3; attempts++ {
			if p.TamperMessages(r.Intn(n)) {
				corrupted++
			}
		}
		if corrupted == 0 {
			return fmt.Errorf("adversary: failed to corrupt any message")
		}
	case ClassDuplicateMessages:
		applyPermutation(p, r)
		zeroProbation(p)
		duplicated := 0
		for attempts := 0; attempts < 8*n && duplicated < 2; attempts++ {
			i, j := r.Pair(n)
			if p.DuplicateMessage(i, j) {
				duplicated++
			}
		}
		if duplicated == 0 {
			return fmt.Errorf("adversary: failed to duplicate any message")
		}
	case ClassRandomGarbage:
		if err := Apply(p, ClassMixedRoles, r); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				p.TamperMessages(i)
			}
		}
	default:
		return fmt.Errorf("adversary: unknown class %q", class)
	}
	return nil
}

// Transient corrupts k uniformly chosen agents in place, leaving the rest
// of the population untouched — the mid-run transient-fault model that
// motivates self-stabilization (memory corruption striking a subset of a
// running system, §1). Each victim receives a random type-valid state:
// a random rank claim, scrambled generation/probation/countdown, a
// triggered reset, or corrupted messages. It returns the victim indices.
func Transient(p *core.Protocol, k int, r *rng.PRNG) []int {
	n := p.N()
	if k > n {
		k = n
	}
	victims := r.Perm(n)[:k]
	for _, i := range victims {
		CorruptOne(p, i, r)
	}
	return victims
}

// CorruptOne gives agent i one random type-valid corrupt state — the
// single-victim core of Transient, exported so churn joins can enter in the
// same fault model (an agent arriving with arbitrary memory).
func CorruptOne(p *core.Protocol, i int, r *rng.PRNG) {
	n := p.N()
	switch r.Intn(5) {
	case 0:
		p.ForceVerifier(i, int32(1+r.Intn(n)))
		p.SetProbation(i, int32(r.Intn(int(p.Constants().PMax))))
		p.SetGeneration(i, uint8(r.Intn(verify.Generations)))
	case 1:
		p.ForceTriggered(i)
	case 2:
		p.ForceRanker(i)
		p.SetCountdown(i, int32(r.Intn(int(p.Constants().CountdownMax))))
	case 3:
		if !p.TamperMessages(i) {
			p.ForceVerifier(i, int32(1+r.Intn(n)))
		}
	default:
		p.ForceDormant(i, int32(1+r.Intn(int(p.Constants().Reset.DMax))))
	}
}

// applyPermutation makes every agent a verifier with a uniformly random
// correct ranking.
func applyPermutation(p *core.Protocol, r *rng.PRNG) {
	perm := r.Perm(p.N())
	for i, rank := range perm {
		p.ForceVerifier(i, int32(rank+1))
	}
}

// zeroProbation sets every verifier's probation timer to zero, placing the
// configuration past the ℰ₃→ℰ₄ rung.
func zeroProbation(p *core.Protocol) {
	for i := 0; i < p.N(); i++ {
		p.SetProbation(i, 0)
	}
}
