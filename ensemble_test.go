package sspp

import (
	"bytes"
	"runtime"
	"testing"

	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/trials"
)

// ensembleGrid is the acceptance grid: 2 (n, r) points × 2 adversary
// classes.
func ensembleGrid(seeds int) Grid {
	return Grid{
		Points:      []Point{{N: 16, R: 4}, {N: 24, R: 8}},
		Adversaries: []Adversary{AdversaryTriggered, AdversaryRandomGarbage},
		Seeds:       seeds,
		BaseSeed:    11,
	}
}

// legacyMeasure replicates the historical internal/experiments trial
// derivation (pre-Ensemble measureSafeSet) verbatim: stream s is the s-th
// sequential Fork of rng.New(baseSeed); each trial draws protoSeed, forks
// adversary and scheduler streams, and runs the bare core protocol to the
// safe set under the generous Theorem 1.1 budget.
func legacyMeasure(t *testing.T, workers, seeds int, baseSeed uint64, n, r int, class Adversary) (times []float64, failures int) {
	t.Helper()
	sys, err := New(Config{N: n, R: r})
	if err != nil {
		t.Fatal(err)
	}
	budget := sys.DefaultBudget()
	type outcome struct {
		took float64
		ok   bool
	}
	results := trials.Run(workers, seeds, baseSeed, func(s int, src *rng.PRNG) outcome {
		protoSeed := src.Uint64()
		advSrc, schedSrc := src.Fork(), src.Fork()
		p, err := core.New(n, r, core.WithSeed(protoSeed))
		if err != nil {
			return outcome{}
		}
		if err := adversary.Apply(p, adversary.Class(class), advSrc); err != nil {
			return outcome{}
		}
		took, ok := p.RunToSafeSet(schedSrc, budget)
		return outcome{took: float64(took), ok: ok}
	})
	for _, res := range results {
		if res.ok {
			times = append(times, res.took)
		} else {
			failures++
		}
	}
	return times, failures
}

// TestEnsembleReproducesExperimentNumbers pins the acceptance criterion: a
// public Ensemble over a 2-point grid × 2 adversary classes reproduces the
// historical experiment-harness numbers byte-identically, at any worker
// count.
func TestEnsembleReproducesExperimentNumbers(t *testing.T) {
	const seeds = 3
	grid := ensembleGrid(seeds)
	for _, workers := range []int{1, 8} {
		ens, err := NewEnsemble(grid, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res := ens.Run()
		if len(res.Cells) != 4 {
			t.Fatalf("cells = %d, want 4", len(res.Cells))
		}
		for _, pt := range grid.Points {
			for _, class := range grid.Adversaries {
				cell, ok := res.Cell(Point{N: pt.N, R: pt.R}, class)
				if !ok {
					t.Fatalf("cell (%d, %d, %s) missing", pt.N, pt.R, class)
				}
				wantTimes, wantFails := legacyMeasure(t, 1, seeds, grid.BaseSeed, pt.N, pt.R, class)
				if cell.Failures != wantFails || len(cell.Samples) != len(wantTimes) {
					t.Fatalf("workers=%d cell (%d,%d,%s): %d samples / %d fails, want %d / %d",
						workers, pt.N, pt.R, class, len(cell.Samples), cell.Failures,
						len(wantTimes), wantFails)
				}
				for i := range wantTimes {
					if cell.Samples[i] != wantTimes[i] {
						t.Fatalf("workers=%d cell (%d,%d,%s) sample %d: %v != legacy %v",
							workers, pt.N, pt.R, class, i, cell.Samples[i], wantTimes[i])
					}
				}
			}
		}
	}
}

// TestEnsembleJSONWorkerCountIndependent pins the public determinism
// contract: the same grid and seeds produce byte-identical JSON at
// -workers=1 and -workers=8 (and GOMAXPROCS, whatever it is).
func TestEnsembleJSONWorkerCountIndependent(t *testing.T) {
	grid := ensembleGrid(2)
	render := func(workers int) []byte {
		ens, err := NewEnsemble(grid, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ens.Run().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	for _, workers := range []int{8, runtime.GOMAXPROCS(0)} {
		if par := render(workers); !bytes.Equal(seq, par) {
			t.Fatalf("JSON differs between workers=1 and workers=%d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				workers, seq, par)
		}
	}
	if !bytes.Contains(seq, []byte(`"schema_version": 1`)) {
		t.Fatalf("schema version missing from JSON:\n%s", seq)
	}
	if bytes.Contains(seq, []byte(`"workers"`)) {
		t.Fatalf("worker count leaked into the deterministic JSON:\n%s", seq)
	}
}

// TestEnsembleCellStatistics: the distributions are self-consistent and in
// the paper's units.
func TestEnsembleCellStatistics(t *testing.T) {
	ens, err := NewEnsemble(Grid{
		Points:      []Point{{N: 16, R: 4}},
		Adversaries: []Adversary{AdversaryTriggered},
		Seeds:       4,
		BaseSeed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ens.Run()
	cell := res.Cells[0]
	if cell.Recovered != 4 || cell.Failures != 0 {
		t.Fatalf("recovered %d / failed %d, want 4 / 0", cell.Recovered, cell.Failures)
	}
	d := cell.Interactions
	if d.N != 4 || d.Min > d.Median || d.Median > d.Max || d.Mean <= 0 {
		t.Fatalf("inconsistent distribution %+v", d)
	}
	if d.P10 < d.Min || d.P90 > d.Max {
		t.Fatalf("quantiles outside range: %+v", d)
	}
	wantPT := d.Mean / 16
	if diff := cell.ParallelTime.Mean - wantPT; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("parallel time %v, want %v", cell.ParallelTime.Mean, wantPT)
	}
	// Triggered starts awaken without hard resets.
	if cell.HardResets.Max != 0 {
		t.Fatalf("triggered class hard resets = %+v", cell.HardResets)
	}
}

// TestEnsembleCleanDefault: an empty adversary list runs one clean start
// per point, which stabilizes.
func TestEnsembleCleanDefault(t *testing.T) {
	ens, err := NewEnsemble(Grid{Points: []Point{{N: 16, R: 4}}, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := ens.Run()
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if res.Cells[0].Adversary != "" || res.Cells[0].Recovered != 2 {
		t.Fatalf("clean cell = %+v", res.Cells[0])
	}
	if res.Seeds != 2 {
		t.Fatalf("seeds = %d", res.Seeds)
	}
}

// TestEnsembleClockAxis: crossing the Clocks axis stamps every cell with
// its clock, keeps the declaration order (clocks between topologies and
// points), stays byte-identical across worker counts — and, because the
// continuous-exact clock draws holding times from a dedicated stream, its
// cells report the same interaction-count samples as the discrete ones.
func TestEnsembleClockAxis(t *testing.T) {
	base := Grid{
		Points:      []Point{{N: 16, R: 4}, {N: 24, R: 8}},
		Adversaries: []Adversary{AdversaryTriggered},
		Seeds:       2,
		BaseSeed:    11,
	}
	clocked := base
	clocked.Clocks = []string{ClockDiscrete, ClockContinuousExact}

	render := func(g Grid, workers int) (*EnsembleResult, []byte) {
		ens, err := NewEnsemble(g, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res := ens.Run()
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}

	plainRes, plainJSON := render(base, 1)
	res, seq := render(clocked, 1)
	if _, par := render(clocked, 8); !bytes.Equal(seq, par) {
		t.Fatalf("clocked JSON differs between workers=1 and workers=8:\n%s\n---\n%s", seq, par)
	}

	// Declaration order: clocks vary slower than points within a topology.
	wantClocks := []string{ClockDiscrete, ClockDiscrete, ClockContinuousExact, ClockContinuousExact}
	if len(res.Cells) != len(wantClocks) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(wantClocks))
	}
	for i, c := range res.Cells {
		if c.Clock != wantClocks[i] {
			t.Fatalf("cell %d clock %q, want %q", i, c.Clock, wantClocks[i])
		}
		if c.Point != base.Points[i%2] {
			t.Fatalf("cell %d point %+v, want %+v", i, c.Point, base.Points[i%2])
		}
	}

	// The continuous-exact clock equips the same jump chain with event times:
	// at matched seeds the stabilization interaction counts are identical,
	// clock to clock and to the un-crossed grid.
	for _, pt := range base.Points {
		plain, ok := plainRes.Cell(pt, AdversaryTriggered)
		if !ok {
			t.Fatalf("plain cell %+v missing", pt)
		}
		for _, clock := range clocked.Clocks {
			cell, ok := res.ClockCell("", "", clock, pt, AdversaryTriggered)
			if !ok {
				t.Fatalf("cell (%s, %+v) missing", clock, pt)
			}
			if len(cell.Samples) != len(plain.Samples) {
				t.Fatalf("clock %s point %+v: %d samples, want %d", clock, pt, len(cell.Samples), len(plain.Samples))
			}
			for i := range plain.Samples {
				if cell.Samples[i] != plain.Samples[i] {
					t.Fatalf("clock %s point %+v sample %d: %v != %v — the clock axis perturbed the jump chain",
						clock, pt, i, cell.Samples[i], plain.Samples[i])
				}
			}
		}
	}

	// The JSON gains the clocks axis; the un-crossed layout stays pre-clock.
	if !bytes.Contains(seq, []byte(`"clocks"`)) || !bytes.Contains(seq, []byte(`"clock": "continuous-exact"`)) {
		t.Fatalf("clock axis missing from JSON:\n%s", seq)
	}
	if bytes.Contains(plainJSON, []byte("clock")) {
		t.Fatalf("un-crossed grid leaks clock fields into JSON:\n%s", plainJSON)
	}

	// The pivot carries the clock stamp through.
	cmp := res.Compare()
	if len(cmp.Clocks) != 2 || cmp.Rows[0].Clock != ClockDiscrete || cmp.Rows[2].Clock != ClockContinuousExact {
		t.Fatalf("compare pivot lost the clock axis: %+v", cmp)
	}
}

// TestEnsembleValidation: bad grids are rejected up front.
func TestEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(Grid{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := NewEnsemble(Grid{Points: []Point{{N: 1, R: 1}}}); err == nil {
		t.Fatal("invalid point accepted")
	}
	if _, err := NewEnsemble(Grid{Points: []Point{{N: 32, R: 17}}}); err == nil {
		t.Fatal("r > n/2 accepted")
	}
	if _, err := NewEnsemble(Grid{
		Points:      []Point{{N: 16, R: 4}},
		Adversaries: []Adversary{"bogus"},
	}); err == nil {
		t.Fatal("unknown adversary accepted")
	}
	if _, err := NewEnsemble(Grid{Points: []Point{{N: 16, R: 4}}, Seeds: -1}); err == nil {
		t.Fatal("negative seeds accepted")
	}
	if _, err := NewEnsemble(Grid{
		Points: []Point{{N: 16, R: 4}},
		Clocks: []string{"sundial"},
	}); err == nil {
		t.Fatal("unknown clock accepted")
	}
}
