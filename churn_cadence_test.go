// churn_cadence_test.go is the regression gate for the n₀-anchoring bug in
// the run engine: quantities the engine derives from the population size by
// default — the safe-set fallback's confirmation window (20·n), the
// condition-poll cadence, and the observation cadence — must be re-derived
// from the LIVE population at churn event boundaries, while explicitly
// given values (Confirm, PollEvery, Observe cadence) stay exactly as given.
// Before the fix, a run that started at n₀=10³ and grew to n=10⁴ confirmed
// the grown population over the starting size's 20·n₀ window — 10× too
// short — and observed it 10× too often.

package sspp

import (
	"fmt"
	"testing"

	"sspp/internal/rng"
)

// churnStubProto is a minimal churnable protocol for exercising the run
// engine's cadence bookkeeping in isolation: interactions are no-ops, the
// output is correct from the start (so the confirmation window alone decides
// when the run stops), and there is no safe-set capability (so Until(SafeSet)
// takes the fallback path that installs the defaulted 20·n window). Joins
// and leaves just adjust the population count.
type churnStubProto struct {
	n int
}

func (p *churnStubProto) N() int            { return p.n }
func (p *churnStubProto) Interact(a, b int) {}
func (p *churnStubProto) Correct() bool     { return true }

func (p *churnStubProto) JoinAgent(class string, src *rng.PRNG) (int, error) {
	if class != "" {
		return 0, fmt.Errorf("churn stub: unknown join class %q", class)
	}
	p.n++
	return p.n - 1, nil
}

func (p *churnStubProto) LeaveAgent(i int) error {
	if p.n <= 2 {
		return fmt.Errorf("churn stub: population at minimum")
	}
	p.n--
	return nil
}

func (p *churnStubProto) ChurnBounds() (minN, maxN int) { return 2, 0 }

// TestDefaultedCadencesTrackLiveN grows the population 10× with a one-shot
// join storm and pins, on the same schedule:
//
//   - the defaulted confirmation window is 20·(live n), not 20·n₀: the run
//     must execute ≈20·10⁴ interactions, not ≈20·10³;
//   - an explicit Confirm(w) is untouched by churn: the paired run stops
//     after ≈w interactions exactly as before the storm;
//   - the defaulted observation cadence stretches from n₀ to the live n:
//     the snapshot count stays ≈20·n/(10·n₀) ≈ 21, not ≈200.
//
// The condition holds from the very first poll (the stub is always correct),
// so Result.Interactions is the confirmation window plus at most two poll
// cadences of slack — a tight, deterministic pin on the window actually used.
func TestDefaultedCadencesTrackLiveN(t *testing.T) {
	const (
		n0      = 1_000
		joins   = 9 * n0 // live population after the storm: 10·n₀ = 10⁴
		liveN   = n0 + joins
		stormAt = 100
	)
	run := func(t *testing.T, observe func(Snapshot), opts ...RunOption) Result {
		t.Helper()
		sys, err := NewCustom(&churnStubProto{n: n0})
		if err != nil {
			t.Fatal(err)
		}
		wl := NewWorkload(PopulationStep(stormAt, joins, Adversary(""), 7))
		all := append([]RunOption{
			SchedulerSeed(1),
			MaxInteractions(500_000),
			WithWorkload(wl),
		}, opts...)
		if observe != nil {
			all = append(all, Observe(0, observe))
		}
		res := sys.Run(all...)
		if res.Err != nil {
			t.Fatalf("run failed: %v", res.Err)
		}
		if !res.Stabilized || res.Condition != "correct-output" {
			t.Fatalf("run = %+v, want stabilized via the correct-output fallback", res)
		}
		if got := sys.N(); got != liveN {
			t.Fatalf("live population %d after the storm, want %d", got, liveN)
		}
		return res
	}

	// Defaulted window: the storm fires at t=100, before the first poll, so
	// the recomputed window 20·liveN governs the whole run. The condition
	// holds from t=0 (StabilizedAt 0) and the run ends at the first poll
	// ≥ 20·liveN; the post-storm defaulted poll cadence is liveN/4+1, so the
	// overshoot is bounded by one pre-storm plus one post-storm cadence.
	snapshots := 0
	res := run(t, func(Snapshot) { snapshots++ })
	const wantWindow = uint64(20 * liveN)
	if res.StabilizedAt != 0 {
		t.Fatalf("StabilizedAt = %d, want 0 (condition held from the start)", res.StabilizedAt)
	}
	if slack := uint64(n0/4 + 1 + liveN/4 + 1); res.Interactions < wantWindow ||
		res.Interactions > wantWindow+slack {
		t.Fatalf("defaulted confirm ran %d interactions, want 20·(live n)=%d (+ ≤%d poll slack); "+
			"a value near %d means the window stayed anchored at n₀",
			res.Interactions, wantWindow, slack, 20*n0)
	}
	// Defaulted observation cadence: n₀ until the storm, live n after — one
	// snapshot at t=10³, then every 10⁴, plus the final one. Anchored at n₀
	// it would be ≈200.
	if snapshots > 50 {
		t.Fatalf("observed %d snapshots over %d interactions; the defaulted cadence "+
			"stayed anchored at n₀=%d instead of stretching to the live n=%d",
			snapshots, res.Interactions, n0, liveN)
	}

	// Explicit window: churn must not touch it. The same storm, but with
	// Confirm(20·n₀) given by the caller — the run stops after ≈20·n₀
	// interactions even though the population is 10× larger.
	const explicit = uint64(20 * n0)
	res = run(t, nil, Confirm(explicit))
	if slack := uint64(n0/4 + 1 + liveN/4 + 1); res.Interactions < explicit ||
		res.Interactions > explicit+slack {
		t.Fatalf("explicit Confirm(%d) ran %d interactions, want the window honored as given (+ ≤%d poll slack)",
			explicit, res.Interactions, slack)
	}
}
