// adversary.go exposes the adversarial starting-configuration classes
// (DESIGN.md §5, internal/adversary) and the mid-run transient-fault model.
// Self-stabilization (Theorem 1.1) promises recovery from any of them.

package sspp

import (
	"fmt"

	"sspp/internal/adversary"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// Adversary identifies an adversarial starting-configuration class; see
// AdversaryClasses for the full list and Inject to apply one.
type Adversary string

// The adversary classes (DESIGN.md §5, internal/adversary).
const (
	AdversaryCleanRankers      = Adversary(adversary.ClassCleanRankers)
	AdversaryTriggered         = Adversary(adversary.ClassTriggered)
	AdversaryMixedRoles        = Adversary(adversary.ClassMixedRoles)
	AdversaryStuckRankers      = Adversary(adversary.ClassStuckRankers)
	AdversaryMixedGenerations  = Adversary(adversary.ClassMixedGenerations)
	AdversaryProbationSkew     = Adversary(adversary.ClassProbationSkew)
	AdversaryTwoLeaders        = Adversary(adversary.ClassTwoLeaders)
	AdversaryNoLeader          = Adversary(adversary.ClassNoLeader)
	AdversaryDuplicateRanks    = Adversary(adversary.ClassDuplicateRanks)
	AdversaryCorruptMessages   = Adversary(adversary.ClassCorruptMessages)
	AdversaryDuplicateMessages = Adversary(adversary.ClassDuplicateMessages)
	AdversaryRandomGarbage     = Adversary(adversary.ClassRandomGarbage)
)

// AdversaryClasses returns every supported adversary class.
func AdversaryClasses() []Adversary {
	classes := adversary.Classes()
	out := make([]Adversary, len(classes))
	for i, c := range classes {
		out[i] = Adversary(c)
	}
	return out
}

// DescribeAdversary returns a one-line description of the class.
func DescribeAdversary(a Adversary) string {
	return adversary.Describe(adversary.Class(a))
}

// RankingPreserved reports whether recovery from the class must keep the
// initial ranking intact (zero hard resets) — true exactly for the classes
// whose ranking is correct and whose faults live only in the message layer
// (the §3.2 soft-reset guarantee).
func RankingPreserved(a Adversary) bool {
	return adversary.ExpectsRankingPreserved(adversary.Class(a))
}

// Inject rewrites the current configuration according to the adversary
// class, using seed for any random choices the class needs. It dispatches
// on the protocol's injectable capability: protocols without it (namerank,
// fastle, most custom protocols) report an error, and protocols with it
// reject classes that are not realizable in their state space.
func (s *System) Inject(a Adversary, seed uint64) error {
	return s.injectWith(a, rng.New(seed))
}

// injectWith is Inject against a caller-owned randomness stream, used by
// the Ensemble layer so trial randomness stays pre-derived.
func (s *System) injectWith(a Adversary, src *rng.PRNG) error {
	inj, ok := sim.AsInjectable(s.proto)
	if !ok {
		return fmt.Errorf("sspp: protocol %q does not support adversarial injection", s.ProtocolName())
	}
	return inj.Inject(string(a), src)
}

// InjectTransient corrupts k uniformly chosen agents in place with random
// type-valid states (rank claims, resets, scrambled timers, corrupted
// messages), leaving the rest of the population untouched — the mid-run
// transient-fault model that motivates self-stabilization. It returns the
// victim indices. The population recovers on its own (experiment T14); see
// also the InjectTransientAt run option for faults scheduled inside a Run.
// Protocols without the injectable capability return an error (they used to
// silently no-op, which made a mis-typed protocol name look fault-tolerant).
func (s *System) InjectTransient(k int, seed uint64) ([]int, error) {
	return s.injectTransientWith(k, rng.New(seed))
}

// injectTransientWith is InjectTransient against a caller-owned randomness
// stream.
func (s *System) injectTransientWith(k int, src *rng.PRNG) ([]int, error) {
	inj, ok := sim.AsInjectable(s.proto)
	if !ok {
		return nil, fmt.Errorf("sspp: protocol %q does not support transient faults (no injectable capability; see the capability table, DESIGN.md §9)", s.ProtocolName())
	}
	return inj.InjectTransient(k, src), nil
}
