// Package sspp is the public interface to this repository's reproduction of
// "A Space-Time Trade-off for Fast Self-Stabilizing Leader Election in
// Population Protocols" (Austin, Berenbrink, Friedetzky, Götte, Hintze;
// PODC 2025, arXiv:2505.01210).
//
// The package wraps the full ElectLeader_r implementation (internal/core and
// its substrates) behind a small facade: build a System, optionally corrupt
// its configuration with an adversary class, run it under the uniform random
// scheduler, and inspect leaders, ranks, and safety. Everything is
// deterministic given the seeds.
//
// A minimal session:
//
//	sys, err := sspp.New(sspp.Config{N: 64, R: 8, Seed: 1})
//	if err != nil { ... }
//	_ = sys.Inject(sspp.AdversaryTwoLeaders, 7)
//	res := sys.RunToSafeSet(2, 0) // scheduler seed 2, default budget
//	if res.Stabilized {
//	    leader, _ := sys.Leader()
//	    fmt.Println("leader:", leader, "after", res.Interactions, "interactions")
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results; cmd/benchtab regenerates every table.
package sspp

import (
	"fmt"
	"math"

	"sspp/internal/adversary"
	"sspp/internal/core"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// Config configures a System.
type Config struct {
	// N is the population size (n ≥ 2).
	N int
	// R is the space-time trade-off parameter (1 ≤ r ≤ n/2): larger r is
	// faster and uses more states (Theorem 1.1).
	R int
	// Seed seeds the protocol-internal randomness. The scheduler seed is
	// passed to the Run* methods separately.
	Seed uint64
	// SyntheticCoins runs the protocol fully derandomized (Appendix B).
	SyntheticCoins bool
}

// System is a running ElectLeader_r population.
type System struct {
	proto  *core.Protocol
	events *sim.Events
	cfg    Config
}

// New builds a System. The initial configuration is the clean
// post-awakening one (all agents fresh rankers); use Inject for adversarial
// starts.
func New(cfg Config) (*System, error) {
	ev := sim.NewEvents()
	opts := []core.Option{core.WithSeed(cfg.Seed), core.WithEvents(ev)}
	if cfg.SyntheticCoins {
		opts = append(opts, core.WithSyntheticCoins())
	}
	p, err := core.New(cfg.N, cfg.R, opts...)
	if err != nil {
		return nil, fmt.Errorf("sspp: %w", err)
	}
	return &System{proto: p, events: ev, cfg: cfg}, nil
}

// N returns the population size.
func (s *System) N() int { return s.proto.N() }

// R returns the trade-off parameter.
func (s *System) R() int { return s.proto.R() }

// Interactions returns the number of interactions executed so far.
func (s *System) Interactions() uint64 { return s.proto.Clock() }

// Adversary identifies an adversarial starting-configuration class; see
// AdversaryClasses for the full list and Inject to apply one.
type Adversary string

// The adversary classes (DESIGN.md §5, internal/adversary).
const (
	AdversaryCleanRankers      = Adversary(adversary.ClassCleanRankers)
	AdversaryTriggered         = Adversary(adversary.ClassTriggered)
	AdversaryMixedRoles        = Adversary(adversary.ClassMixedRoles)
	AdversaryStuckRankers      = Adversary(adversary.ClassStuckRankers)
	AdversaryMixedGenerations  = Adversary(adversary.ClassMixedGenerations)
	AdversaryProbationSkew     = Adversary(adversary.ClassProbationSkew)
	AdversaryTwoLeaders        = Adversary(adversary.ClassTwoLeaders)
	AdversaryNoLeader          = Adversary(adversary.ClassNoLeader)
	AdversaryDuplicateRanks    = Adversary(adversary.ClassDuplicateRanks)
	AdversaryCorruptMessages   = Adversary(adversary.ClassCorruptMessages)
	AdversaryDuplicateMessages = Adversary(adversary.ClassDuplicateMessages)
	AdversaryRandomGarbage     = Adversary(adversary.ClassRandomGarbage)
)

// AdversaryClasses returns every supported adversary class.
func AdversaryClasses() []Adversary {
	classes := adversary.Classes()
	out := make([]Adversary, len(classes))
	for i, c := range classes {
		out[i] = Adversary(c)
	}
	return out
}

// DescribeAdversary returns a one-line description of the class.
func DescribeAdversary(a Adversary) string {
	return adversary.Describe(adversary.Class(a))
}

// Inject rewrites the current configuration according to the adversary
// class, using seed for any random choices the class needs.
func (s *System) Inject(a Adversary, seed uint64) error {
	return adversary.Apply(s.proto, adversary.Class(a), rng.New(seed))
}

// InjectTransient corrupts k uniformly chosen agents in place with random
// type-valid states (rank claims, resets, scrambled timers, corrupted
// messages), leaving the rest of the population untouched — the mid-run
// transient-fault model that motivates self-stabilization. It returns the
// victim indices. The population recovers on its own (experiment T14).
func (s *System) InjectTransient(k int, seed uint64) []int {
	return adversary.Transient(s.proto, k, rng.New(seed))
}

// Step executes k uniformly random interactions with the given scheduler
// seed stream. Repeated calls with the same *System advance the same
// configuration; pass different seeds to explore schedules.
func (s *System) Step(schedulerSeed uint64, k uint64) {
	sim.Steps(s.proto, rng.New(schedulerSeed), k)
}

// Result reports a Run* outcome.
type Result struct {
	// Interactions is the total interactions executed by the call.
	Interactions uint64
	// Stabilized reports whether the target condition was reached.
	Stabilized bool
	// ParallelTime is Interactions/n, the paper's time measure (-1 when not
	// stabilized).
	ParallelTime float64
}

// DefaultBudget returns the default interaction budget for the system's
// (n, r): a generous multiple of the Theorem 1.1 bound (n²/r)·log n.
func (s *System) DefaultBudget() uint64 {
	n, r := float64(s.N()), float64(s.R())
	return uint64(1000 * n * n / r * math.Log(n+1))
}

// RunToSafeSet runs until the configuration enters the safe set of Lemma 6.1
// (correct ranking, all verifiers, coherent generations — correct forever),
// or until max interactions (0 means DefaultBudget).
func (s *System) RunToSafeSet(schedulerSeed uint64, max uint64) Result {
	if max == 0 {
		max = s.DefaultBudget()
	}
	took, ok := s.proto.RunToSafeSet(rng.New(schedulerSeed), max)
	res := Result{Interactions: took, Stabilized: ok, ParallelTime: -1}
	if ok {
		res.ParallelTime = float64(took) / float64(s.N())
	}
	return res
}

// RunToStableOutput runs until the output (exactly one leader) has held for
// the confirmation window (0 means 20·n interactions), or until max
// interactions (0 means DefaultBudget). It reports the interaction count at
// which the final correct stretch began.
func (s *System) RunToStableOutput(schedulerSeed uint64, max, confirm uint64) Result {
	if max == 0 {
		max = s.DefaultBudget()
	}
	if confirm == 0 {
		confirm = uint64(20 * s.N())
	}
	at, ok := s.proto.RunToOutputStable(rng.New(schedulerSeed), max, confirm)
	res := Result{Interactions: at, Stabilized: ok, ParallelTime: -1}
	if ok {
		res.ParallelTime = float64(at) / float64(s.N())
	}
	return res
}

// Leader returns the index of the unique leader, or ok = false when the
// configuration does not currently have exactly one leader. O(1): the core
// tracks the leader incrementally, so no scan is performed.
func (s *System) Leader() (int, bool) { return s.proto.LeaderIndex() }

// Leaders returns the number of agents currently outputting "leader". O(1).
func (s *System) Leaders() int { return s.proto.Leaders() }

// Ranks returns every agent's current rank output.
func (s *System) Ranks() []int {
	out := make([]int, s.N())
	for i := range out {
		out[i] = int(s.proto.RankOutput(i))
	}
	return out
}

// Correct reports whether exactly one agent outputs "leader".
func (s *System) Correct() bool { return s.proto.Correct() }

// CorrectRanking reports whether the rank outputs form a permutation.
func (s *System) CorrectRanking() bool { return s.proto.CorrectRanking() }

// InSafeSet reports whether the configuration is in (the checkable core of)
// the safe set of Lemma 6.1.
func (s *System) InSafeSet() bool { return s.proto.InSafeSet() }

// Roles returns the number of agents that are resetting, ranking, and
// verifying.
func (s *System) Roles() (resetting, ranking, verifying int) {
	return s.proto.Roles()
}

// EventCount returns how often the named event occurred; see Events for the
// available names.
func (s *System) EventCount(name string) uint64 { return s.events.Count(name) }

// Events returns all recorded event names with counts, rendered compactly.
func (s *System) Events() string { return s.events.String() }

// HardResets returns the number of full resets triggered so far.
func (s *System) HardResets() uint64 { return s.events.Count(core.EventHardReset) }

// StateBits returns log₂ of the per-agent state-space size of ElectLeader_r
// for the given parameters (the Figure 1 formula) — 2^O(r²·log n).
func StateBits(n, r int) float64 {
	return core.ElectLeaderBits(float64(n), float64(r))
}

// Snapshot is a point-in-time view of the population used for tracing.
type Snapshot struct {
	// Interactions is the total interactions executed so far.
	Interactions uint64
	// Resetting, Ranking, Verifying are the role counts.
	Resetting, Ranking, Verifying int
	// Leaders is the number of agents outputting "leader".
	Leaders int
	// HardResets, SoftResets, Tops are cumulative event counts.
	HardResets, SoftResets, Tops uint64
	// InSafeSet reports whether the configuration is in the safe set.
	InSafeSet bool
}

// Snapshot returns the current population composition.
func (s *System) Snapshot() Snapshot {
	resetting, rankingCount, verifying := s.proto.Roles()
	return Snapshot{
		Interactions: s.proto.Clock(),
		Resetting:    resetting,
		Ranking:      rankingCount,
		Verifying:    verifying,
		Leaders:      s.proto.Leaders(),
		HardResets:   s.events.Count(core.EventHardReset),
		SoftResets:   s.events.Count("verify.soft_reset"),
		Tops:         s.events.Count("verify.top"),
		InSafeSet:    s.proto.InSafeSet(),
	}
}

// Trace runs under a single scheduler stream for at most max interactions
// (0 means DefaultBudget), invoking observe every cadence interactions
// (0 means n) and once more at the end; it stops early when the safe set is
// reached. It returns the same result as RunToSafeSet.
func (s *System) Trace(schedulerSeed uint64, max, cadence uint64, observe func(Snapshot)) Result {
	if max == 0 {
		max = s.DefaultBudget()
	}
	if cadence == 0 {
		cadence = uint64(s.N())
	}
	sched := rng.New(schedulerSeed)
	var t uint64
	res := Result{ParallelTime: -1}
	for t < max {
		limit := t + cadence
		if limit > max {
			limit = max
		}
		for t < limit {
			a, b := sched.Pair(s.N())
			s.proto.Interact(a, b)
			t++
		}
		snap := s.Snapshot()
		if observe != nil {
			observe(snap)
		}
		if snap.InSafeSet {
			res.Stabilized = true
			break
		}
	}
	res.Interactions = t
	if res.Stabilized {
		res.ParallelTime = float64(t) / float64(s.N())
	}
	return res
}
