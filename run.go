// run.go implements the composable run engine of the public API: one
// generic, scheduler-driven execution loop configured by RunOption values,
// with first-class stop conditions, confirmation windows, observation hooks,
// mid-run transient faults, and cancellation. The legacy RunToSafeSet /
// RunToStableOutput / Trace entry points survive as thin deprecated wrappers
// and produce bit-identical results for identical seeds.

package sspp

import (
	"context"
	"fmt"

	"sspp/internal/rng"
	"sspp/internal/sim"
	"sspp/internal/workload"
)

// Condition is a first-class stop predicate over a System. The built-in
// conditions are SafeSet (Lemma 6.1 configuration-level stabilization) and
// CorrectOutput (exactly one leader); build custom ones with ConditionFunc.
type Condition struct {
	name  string
	holds func(*System) bool
	// cadence is the default polling interval in interactions for a
	// population of n agents (matching the historical per-condition poll
	// rates, which the deprecated wrappers rely on for bit-identity).
	cadence func(n int) uint64
	// safeSet marks the built-in SafeSet condition, which Run replaces with
	// CorrectOutput + Confirm for protocols without a safe set.
	safeSet bool
}

// String returns the condition's name (also reported in Result.Condition).
func (c Condition) String() string { return c.name }

// SafeSet holds when the configuration is in (the checkable core of) the
// protocol's safe set — for ElectLeader_r the safe set of Lemma 6.1:
// correct ranking, all verifiers, coherent generations — correct forever.
// This is the paper's stabilization notion and the default stop condition
// of Run. For protocols without a checkable safe set (no safe-set
// capability, e.g. the loosely-stabilizing baseline), Run substitutes
// CorrectOutput with a confirmation window of 20·n interactions (unless
// Confirm was given), and Result.Condition reports "correct-output".
var SafeSet = Condition{
	name:    "safe-set",
	holds:   (*System).InSafeSet,
	cadence: func(n int) uint64 { return uint64(n/2 + 1) },
	safeSet: true,
}

// CorrectOutput holds when exactly one agent outputs "leader". Unlike
// SafeSet it is not closed under further interactions, so it is normally
// combined with Confirm to measure output-level stabilization.
var CorrectOutput = Condition{
	name:    "correct-output",
	holds:   (*System).Correct,
	cadence: func(n int) uint64 { return uint64(n/4 + 1) },
}

// ConditionFunc builds a custom stop condition from a predicate. The
// predicate is polled on the condition cadence (override with PollEvery);
// it must not mutate the system.
func ConditionFunc(name string, holds func(*System) bool) Condition {
	return Condition{
		name:    name,
		holds:   holds,
		cadence: func(n int) uint64 { return uint64(n/2 + 1) },
	}
}

// MaxParallelTime holds once the system's parallel time (System.ParallelTime
// — the native event time under the continuous clocks, interactions over the
// live population size under the discrete one) reaches pt units. The time is
// system-lifetime, not per-Run, so a fresh system runs for pt units while a
// resumed one runs only the remainder. Like every condition it is polled on
// the condition cadence, so the overshoot resolution is one poll.
func MaxParallelTime(pt float64) Condition {
	return Condition{
		name:    "max-parallel-time",
		holds:   func(s *System) bool { return s.ParallelTime() >= pt },
		cadence: func(n int) uint64 { return uint64(n/2 + 1) },
	}
}

// runSpec is the resolved configuration of one Run call.
type runSpec struct {
	cond      Condition
	max       uint64
	confirm   uint64
	poll      uint64
	schedSeed uint64
	seedSet   bool
	sched     Scheduler
	obsEvery  uint64
	observe   func(Snapshot)
	ctx       context.Context
	// events is the scheduled disruption timeline: InjectTransientAt bursts
	// plus everything the attached workload compiles to.
	events []workload.Event
	// wl is the attached workload, compiled against (n, budget) when Run
	// starts.
	wl *Workload
	// awaitEvents keeps the run alive until every scheduled event has fired,
	// even when the stop condition already holds — workload runs measure
	// recovery after each event. The legacy InjectTransientAt contract
	// ("faults scheduled past the stop do not fire") stays untouched: only
	// WithWorkload sets this.
	awaitEvents bool
	// traceDst, when non-nil, receives the recorded workload trace.
	traceDst **WorkloadTrace
}

// RunOption configures a single System.Run call.
type RunOption func(*runSpec)

// Until sets the stop condition (default SafeSet).
func Until(c Condition) RunOption {
	return func(r *runSpec) { r.cond = c }
}

// MaxInteractions bounds the run (0, the default, means DefaultBudget).
func MaxInteractions(m uint64) RunOption {
	return func(r *runSpec) { r.max = m }
}

// Confirm requires the stop condition to have held continuously for at least
// window interactions before the run stops (default 0: stop at the first
// poll at which the condition holds). Result.StabilizedAt reports the start
// of the confirmed stretch.
func Confirm(window uint64) RunOption {
	return func(r *runSpec) { r.confirm = window }
}

// PollEvery overrides the condition-polling cadence in interactions
// (default: the stop condition's own cadence — ⌈n/2⌉+1 for SafeSet and
// custom conditions, ⌈n/4⌉+1 for CorrectOutput).
func PollEvery(cadence uint64) RunOption {
	return func(r *runSpec) {
		if cadence > 0 {
			r.poll = cadence
		}
	}
}

// SchedulerSeed runs under the uniform random scheduler of the paper's
// model, drawn from the given seed (default: Config.Seed + 1). Ignored when
// WithScheduler is given.
func SchedulerSeed(seed uint64) RunOption {
	return func(r *runSpec) { r.schedSeed = seed; r.seedSet = true }
}

// WithScheduler runs under an arbitrary Scheduler (non-uniform, batched,
// replayed, ...), overriding SchedulerSeed.
func WithScheduler(s Scheduler) RunOption {
	return func(r *runSpec) { r.sched = s }
}

// Observe invokes fn with a Snapshot every cadence interactions (0 means n)
// and exactly once more with the final state when the run ends — whether it
// stops on the condition, exhausts the budget, or is cancelled. When the end
// falls on a cadence boundary the final observation is delivered exactly
// once, not twice. A nil fn is ignored.
func Observe(cadence uint64, fn func(Snapshot)) RunOption {
	return func(r *runSpec) {
		if fn != nil {
			r.observe = fn
			r.obsEvery = cadence
		}
	}
}

// InjectTransientAt corrupts k uniformly chosen agents in place (the
// mid-run transient-fault model, see System.InjectTransient) once the run
// reaches interaction t, counted from the start of this Run call. Faults
// scheduled past the point at which the run stops do not fire. The option
// may be repeated to schedule several bursts. Scheduling faults on a
// protocol without the injectable capability fails the run up front
// (Result.Err, zero interactions) rather than silently skipping the burst.
func InjectTransientAt(t uint64, k int, seed uint64) RunOption {
	return func(r *runSpec) {
		r.events = append(r.events, workload.Event{At: t, Kind: workload.KindTransient, K: k, Seed: seed})
	}
}

// WithWorkload attaches a workload — a schedule of timed disruption phases
// (transient bursts, adversary re-injections, churn arrival processes) —
// compiled against the population size and the interaction budget when the
// run starts, validated against the protocol's capabilities up front, and
// fired at exact interaction counts. Unlike plain InjectTransientAt, a
// workload run keeps going until every scheduled event has fired (within the
// budget), and Result.Events reports each event with the time at which the
// stop condition was next observed to hold — recovery after each disruption,
// not just after the last. Churn phases require the complete topology.
func WithWorkload(w *Workload) RunOption {
	return func(r *runSpec) {
		if w != nil {
			r.wl = w
			r.awaitEvents = true
		}
	}
}

// RecordTrace captures everything the run does — the dealt interaction
// pairs, per-agent state keys when the protocol exposes them, and every
// fired event with its exact effect on the state multiset — into a versioned
// WorkloadTrace written to *dst when the run ends. A recorded trace replays
// bit-exactly via System.ReplayTrace on both backends. Recording requires
// the agent backend (the species backend has no interaction pairs to record)
// and the complete topology.
func RecordTrace(dst **WorkloadTrace) RunOption {
	return func(r *runSpec) { r.traceDst = dst }
}

// WithContext makes the run cancellable: the context is checked at every
// condition poll and, when cancelled, the run stops with Result.Err set to
// the context's error and Stabilized false.
func WithContext(ctx context.Context) RunOption {
	return func(r *runSpec) {
		if ctx != nil {
			r.ctx = ctx
		}
	}
}

// Result reports a Run outcome.
type Result struct {
	// Interactions is the total interactions executed by the call.
	Interactions uint64
	// Stabilized reports whether the stop condition was reached (and, with
	// Confirm, had held for the full window).
	Stabilized bool
	// ParallelTime is the paper's time measure at StabilizedAt, counted from
	// the start of this Run call (-1 when not stabilized). Under the discrete
	// clock it is interactions over the live population size, accrued per
	// stepping segment so churn re-anchors it (for churn-free runs exactly
	// StabilizedAt/n, the historical value, bit for bit); under the
	// continuous clocks it is the native event time of the Poisson process.
	ParallelTime float64
	// StabilizedAt is the interaction count at which the final satisfied
	// stretch of the condition began (0 when not stabilized). Without
	// Confirm it equals Interactions; with Confirm it is the start of the
	// confirmed window. Its resolution is the polling cadence.
	StabilizedAt uint64
	// Condition names the stop condition the run used.
	Condition string
	// Events reports every scheduled workload event (in firing order) with
	// its per-event recovery observation; nil for runs without a schedule.
	// It is a pointer so Result stays comparable with == for schedule-free
	// runs (the bit-identity contract of the deprecated wrappers); read it
	// through EventOutcomes.
	Events *EventList
	// Err is non-nil when the run was cancelled via WithContext or a
	// scheduled event failed to apply.
	Err error
}

// EventList is the per-event outcome list of a workload run.
type EventList []EventOutcome

// EventOutcomes returns the scheduled events' outcomes (nil for runs without
// a schedule).
func (r Result) EventOutcomes() []EventOutcome {
	if r.Events == nil {
		return nil
	}
	return *r.Events
}

// EventOutcome is one scheduled event's outcome within a Run.
type EventOutcome struct {
	// At is the interaction count the event was scheduled for.
	At uint64
	// Kind is the event kind's wire name (transient, inject, join, leave).
	Kind string
	// K is the burst size of transient events.
	K int
	// Class is the adversary class of inject and join events.
	Class string
	// N is the population size after the event fired.
	N int
	// Fired reports whether the run reached the event before stopping.
	Fired bool
	// Recovered reports whether the stop condition was observed to hold at
	// some poll after the event fired.
	Recovered bool
	// RecoveredAt is the interaction count of that first poll (resolution:
	// the polling cadence). Zero when not recovered.
	RecoveredAt uint64
}

// Run executes the system under a scheduler until the stop condition is
// reached (confirmed, if requested) or the interaction budget is exhausted.
// With no options it runs to the safe set of Lemma 6.1 under the uniform
// scheduler seeded with Config.Seed+1, within DefaultBudget interactions.
//
// The engine polls the condition on a fixed cadence, so the reported times
// have that resolution; observation hooks and scheduled transient faults
// fire at their exact interaction counts and never perturb the scheduler
// stream, keeping runs bit-for-bit reproducible for identical seeds.
func (s *System) Run(opts ...RunOption) Result {
	spec := runSpec{cond: SafeSet, ctx: context.Background()}
	for _, o := range opts {
		o(&spec)
	}
	n0 := s.N()
	n := n0
	// Safe-set fallback: protocols without a checkable safe set are measured
	// at the output level instead — correct output held through a
	// confirmation window (20·n interactions unless Confirm was given).
	// Defaulted quantities derived from n (this window, the poll cadence,
	// the observation cadence) track the LIVE population: churn events
	// recompute them below, so a grown population is not measured on the
	// starting size's scales. Explicit Confirm/PollEvery/Observe cadences
	// stay exactly as given.
	confirmDefaulted := false
	if spec.cond.safeSet {
		if _, ok := sim.AsSafeSetter(s.proto); !ok {
			spec.cond = CorrectOutput
			if spec.confirm == 0 {
				spec.confirm = uint64(20 * n)
				confirmDefaulted = true
			}
		}
	}
	max := spec.max
	if max == 0 {
		max = s.DefaultBudget()
	}
	// Compile the attached workload against the starting population and the
	// resolved budget, merge it with any InjectTransientAt bursts, and
	// validate the whole schedule against the protocol's capability set up
	// front — a run never fires a disruption its protocol cannot absorb.
	if spec.wl != nil {
		spec.events = append(spec.events, workload.Compile(spec.wl.phases, n0, max)...)
	}
	workload.SortEvents(spec.events)
	if len(spec.events) > 0 {
		if err := workload.Validate(spec.events, n0, s.workloadCaps()); err != nil {
			return Result{Condition: spec.cond.name, ParallelTime: -1, Err: err}
		}
		if workload.UsesChurn(spec.events) && s.graph != nil {
			return Result{
				Condition:    spec.cond.name,
				ParallelTime: -1,
				Err: fmt.Errorf("sspp: churn requires the complete topology; topology %q does not support it (see the capability table, DESIGN.md §10)",
					s.graph.Name()),
			}
		}
	}
	pollDefaulted := spec.poll == 0
	poll := spec.poll
	if pollDefaulted {
		poll = spec.cond.cadence(n)
	}
	sched := spec.sched
	if sched == nil {
		seed := spec.schedSeed
		if !spec.seedSet {
			seed = s.cfg.Seed + 1
		}
		sched = rng.New(seed)
	}
	// Non-complete topologies sample ordered pairs from the interaction
	// graph's edge set: a uniform PRNG stream is re-bound as the edge-index
	// source, topology-aware and edge-replayed schedules pass through, and
	// anything dealing from [n]² fails the run up front rather than
	// silently simulating the complete graph. Complete-topology systems
	// keep the historical scheduler untouched.
	sched, terr := s.topologize(sched)
	if terr != nil {
		return Result{Condition: spec.cond.name, ParallelTime: -1, Err: terr}
	}
	// Count-based backends (the species backend) have no agent identities:
	// they draw state pairs from a uniform stream themselves and step in
	// bulk. Only uniform PRNG schedulers can seed that stream; anything else
	// (batch, weighted, replayed, user types) fails the run up front rather
	// than silently mis-modelling the schedule.
	cb, countBased := sim.AsCountBased(s.proto)
	if countBased {
		src, uniform := sched.(*rng.PRNG)
		if !uniform {
			return Result{
				Condition:    spec.cond.name,
				ParallelTime: -1,
				Err: fmt.Errorf("sspp: the species backend draws its own interaction pairs and supports only uniform schedulers (SchedulerSeed / NewUniform); got %T",
					sched),
			}
		}
		cb.BindSource(src)
	}
	// Trace recording needs the agent backend on the complete topology: the
	// species backend draws state pairs internally (no agent pairs exist to
	// record), and edge-indexed schedules go through the Recording format.
	var tracer *traceRecorder
	if spec.traceDst != nil {
		if countBased {
			return Result{
				Condition:    spec.cond.name,
				ParallelTime: -1,
				Err:          fmt.Errorf("sspp: trace recording requires the agent backend (record there, then replay on either backend)"),
			}
		}
		if s.graph != nil {
			return Result{
				Condition:    spec.cond.name,
				ParallelTime: -1,
				Err:          fmt.Errorf("sspp: trace recording requires the complete topology (capture edge-indexed schedules with NewRecorder and archive them via Recording.Encode)"),
			}
		}
		tracer = newTraceRecorder(s)
	}
	obsDefaulted := spec.observe != nil && spec.obsEvery == 0
	obsEvery := spec.obsEvery
	if obsDefaulted {
		obsEvery = uint64(n)
	}

	const never = ^uint64(0)
	res := Result{Condition: spec.cond.name, ParallelTime: -1}
	outcomes := make([]EventOutcome, len(spec.events))
	for i, ev := range spec.events {
		outcomes[i] = EventOutcome{At: ev.At, Kind: ev.Kind.String(), K: ev.K, Class: ev.Class}
	}
	var pending []int
	var t, since uint64
	fi := 0
	// Parallel-time plumbing. Under the continuous clocks some component
	// carries native event time — the protocol's own continuous stepper, the
	// TimeKeeper, or a Timed scheduler (the next-reaction scheduler topologize
	// builds) — and the run reads it back relative to the run's start. Under
	// the discrete clock the run derives time as interactions over the live
	// population size, closed into a segment at every churn event so each
	// interaction contributes 1/n_live (churn-free runs reduce to exactly
	// t/n₀, the historical value bit for bit).
	continuous := s.clockMode == ClockContinuous || s.clockMode == ClockContinuousExact
	var timedSched sim.Timed
	if continuous {
		if _, ok := sim.AsContinuousStepper(s.proto); !ok {
			timedSched, _ = sched.(sim.Timed)
		}
	}
	var pt0 float64
	if continuous {
		pt0 = s.ParallelTime()
	}
	var rBase float64   // parallel time accrued by closed discrete segments
	var segStart uint64 // interaction count opening the current segment
	ptRun := func() float64 {
		if continuous {
			return s.ParallelTime() - pt0
		}
		return rBase + float64(t-segStart)/float64(n)
	}
	var ptSince float64 // ptRun() at the moment since was last set
	// advance accrues system-level parallel time for one just-stepped chunk
	// (the Timed scheduler carries its own clock; everything else goes
	// through advanceClock).
	advance := func(step uint64) {
		if timedSched != nil {
			if step != 0 {
				s.pt = timedSched.Time()
			}
			return
		}
		s.advanceClock(step)
	}
	// fire applies every event scheduled for the current interaction count,
	// in order (leaves before joins within an instant); a failing event
	// aborts the run with Result.Err.
	fire := func() bool {
		for fi < len(spec.events) && spec.events[fi].At == t {
			ev := spec.events[fi]
			var before map[uint64]int64
			if tracer != nil {
				before = tracer.census()
			}
			if err := s.applyWorkloadEvent(ev); err != nil {
				res.Err = err
				return false
			}
			if nn := s.N(); nn != n {
				// Churn changed the population: close the discrete-time
				// segment at the old rate and re-anchor the clocks at the new
				// one, so every interaction contributes 1/n_live.
				if !continuous {
					rBase += float64(t-segStart) / float64(n)
					segStart = t
				}
				if s.tk != nil {
					s.tk.SetN(nn)
				}
				n = nn
				// Re-derive every defaulted n-anchored cadence from the live
				// population. Anchoring them at n₀ forever would confirm a 10×
				// grown population over a window 10× too short (and poll /
				// observe it 10× too often); the already-scheduled nextPoll and
				// nextObs marks stand — only the spacing after them changes.
				if confirmDefaulted {
					spec.confirm = uint64(20 * n)
				}
				if pollDefaulted {
					poll = spec.cond.cadence(n)
				}
				if obsDefaulted {
					obsEvery = uint64(n)
				}
			}
			outcomes[fi].Fired = true
			outcomes[fi].N = n
			pending = append(pending, fi)
			if tracer != nil {
				tracer.event(ev, before, n)
			}
			fi++
		}
		return true
	}
	// Events at t = 0 strike the starting configuration, before the initial
	// condition poll.
	ok := fire()
	held := spec.cond.holds(s)
	markRecovered := func() {
		for _, i := range pending {
			outcomes[i].Recovered = true
			outcomes[i].RecoveredAt = t
		}
		pending = pending[:0]
	}
	if held {
		markRecovered()
	}
	lastObs := never

	finish := func() Result {
		res.Interactions = t
		if res.Err == nil && held && t-since >= spec.confirm {
			res.Stabilized = true
			res.StabilizedAt = since
			res.ParallelTime = ptSince
		}
		if len(outcomes) > 0 {
			el := EventList(outcomes)
			res.Events = &el
		}
		if spec.observe != nil && lastObs != t {
			spec.observe(s.Snapshot())
		}
		if tracer != nil && res.Err == nil {
			*spec.traceDst = tracer.finish(t)
		}
		return res
	}

	if !ok {
		return finish()
	}
	if err := spec.ctx.Err(); err != nil {
		res.Err = err
		return finish()
	}
	if held && spec.confirm == 0 && (!spec.awaitEvents || fi == len(spec.events)) {
		return finish()
	}

	nextPoll := poll
	nextObs := never
	if spec.observe != nil {
		nextObs = obsEvery
	}
	for t < max {
		next := max
		if nextPoll < next {
			next = nextPoll
		}
		if nextObs < next {
			next = nextObs
		}
		if fi < len(spec.events) && spec.events[fi].At < next {
			next = spec.events[fi].At
		}
		step := next - t
		s.clock += step
		if countBased {
			cb.StepMany(step)
			t = next
		} else if tracer != nil {
			for t < next {
				a, b := sched.Pair(n)
				tracer.pair(a, b)
				s.proto.Interact(a, b)
				t++
			}
		} else {
			for t < next {
				a, b := sched.Pair(n)
				s.proto.Interact(a, b)
				t++
			}
		}
		advance(step)
		if !fire() {
			break
		}
		if t == nextObs {
			spec.observe(s.Snapshot())
			lastObs = t
			nextObs += obsEvery
		}
		if t == nextPoll || t == max {
			now := spec.cond.holds(s)
			if now {
				markRecovered()
			}
			if now != held {
				if now {
					since = t
					ptSince = ptRun()
				}
				held = now
			}
			if err := spec.ctx.Err(); err != nil {
				res.Err = err
				break
			}
			if held && t-since >= spec.confirm && (!spec.awaitEvents || fi == len(spec.events)) {
				break
			}
			if t == nextPoll {
				nextPoll += poll
			}
		}
	}
	return finish()
}

// workloadCaps probes the running protocol's disruption capabilities for
// schedule validation. The count-based churn capability wins over the
// agent-level one: species systems carry the churn method set structurally
// and gate real support behind CanChurn.
func (s *System) workloadCaps() workload.Caps {
	caps := workload.Caps{Protocol: s.ProtocolName()}
	_, caps.Injectable = sim.AsInjectable(s.proto)
	if cc, ok := sim.AsCountChurnable(s.proto); ok {
		if cc.CanChurn() {
			caps.Churnable = true
			caps.MinN, caps.MaxN = cc.ChurnBounds()
		}
	} else if ch, ok := sim.AsChurnable(s.proto); ok {
		caps.Churnable = true
		caps.MinN, caps.MaxN = ch.ChurnBounds()
	}
	return caps
}

// Step executes k scheduler-driven interactions with the given scheduler
// seed stream, with no condition polling: uniformly random pairs on the
// complete topology, uniformly random interaction-graph edges otherwise.
// Repeated calls with the same *System advance the same configuration; pass
// different seeds to explore schedules.
func (s *System) Step(schedulerSeed uint64, k uint64) {
	if s.graph == nil {
		sim.Steps(s.proto, rng.New(schedulerSeed), k) // the monomorphic historical fast path
		s.clock += k
		s.advanceClock(k)
		return
	}
	// Graph systems route through StepSched so topologize picks the clock's
	// scheduler (edge sampler or next-reaction) — bit-identical schedules
	// under the discrete clock.
	s.StepSched(rng.New(schedulerSeed), k)
}

// StepSched executes exactly k interactions under an arbitrary Scheduler,
// with no condition polling. On a non-complete topology a uniform scheduler
// (NewUniform) is re-bound to sample the system's edge set, like Run does,
// and a scheduler dealing pairs from [n]² panics rather than silently
// simulating the complete graph. Species-backed systems accept only uniform
// schedulers (NewUniform; agent identities do not exist in species form)
// and panic on anything else rather than silently substituting uniform
// dynamics.
func (s *System) StepSched(sched Scheduler, k uint64) {
	sched, err := s.topologize(sched)
	if err != nil {
		panic(err.Error())
	}
	sim.StepsSched(s.proto, sched, k)
	s.clock += k
	if td, ok := sched.(sim.Timed); ok &&
		(s.clockMode == ClockContinuous || s.clockMode == ClockContinuousExact) {
		s.pt = td.Time()
		return
	}
	s.advanceClock(k)
}

// RunToSafeSet runs until the configuration enters the safe set of Lemma 6.1
// or until max interactions (0 means DefaultBudget).
//
// Deprecated: use Run(Until(SafeSet), SchedulerSeed(seed),
// MaxInteractions(max)). The wrapper produces identical results for
// identical seeds.
func (s *System) RunToSafeSet(schedulerSeed uint64, max uint64) Result {
	return s.Run(Until(SafeSet), SchedulerSeed(schedulerSeed), MaxInteractions(max))
}

// RunToStableOutput runs until the output (exactly one leader) has held for
// the confirmation window (0 means 20·n interactions), or until max
// interactions (0 means DefaultBudget). Result.Interactions reports the
// interaction count at which the final correct stretch began.
//
// Deprecated: use Run(Until(CorrectOutput), Confirm(window),
// SchedulerSeed(seed), MaxInteractions(max)); Result.StabilizedAt carries
// the stretch start, and Result.Interactions the true interaction count. The
// wrapper produces identical results for identical seeds.
func (s *System) RunToStableOutput(schedulerSeed uint64, max, confirm uint64) Result {
	if confirm == 0 {
		confirm = uint64(20 * s.N())
	}
	res := s.Run(Until(CorrectOutput), SchedulerSeed(schedulerSeed),
		MaxInteractions(max), Confirm(confirm))
	res.Interactions = res.StabilizedAt // historical contract of this entry point
	return res
}

// Trace runs to the safe set under a single scheduler stream, invoking
// observe every cadence interactions (0 means n) and once more at the end.
// Unlike the historical implementation, a system already in the safe set
// returns immediately with zero interactions instead of executing one
// cadence chunk first; all other schedules are dealt identically.
//
// Deprecated: use Run(Observe(cadence, observe), PollEvery(cadence),
// SchedulerSeed(seed), MaxInteractions(max)).
func (s *System) Trace(schedulerSeed uint64, max, cadence uint64, observe func(Snapshot)) Result {
	if cadence == 0 {
		cadence = uint64(s.N())
	}
	return s.Run(Until(SafeSet), SchedulerSeed(schedulerSeed), MaxInteractions(max),
		PollEvery(cadence), Observe(cadence, observe))
}
