// topology_test.go pins the interaction-topology layer's acceptance
// criteria: the complete topology is bit-identical to the historical
// uniform-scheduler engine (same seed, same Recording, same runs),
// topology schedules record as edge indices and replay exactly on rings
// and random regular graphs, and the species backend rejects non-complete
// topologies up front for every registry protocol.

package sspp

import (
	"bytes"
	"strings"
	"testing"
)

// TestCompleteTopologySamplerBitIdentical is the property test of the
// refactor: Topology: Complete() reproduces the pre-topology uniform
// scheduler bit for bit — the same seed deals the same schedule, and a
// Recording of one replays as the other.
func TestCompleteTopologySamplerBitIdentical(t *testing.T) {
	sys, err := New(Config{N: 32, R: 8, Seed: 1, Topology: Complete()})
	if err != nil {
		t.Fatal(err)
	}
	const n, pairs = 32, 10_000
	recSampler := NewRecorder(sys.Sampler(7))
	recUniform := NewRecorder(NewUniform(7))
	for i := 0; i < pairs; i++ {
		sa, sb := recSampler.Pair(n)
		ua, ub := recUniform.Pair(n)
		if sa != ua || sb != ub {
			t.Fatalf("pair %d diverges: sampler (%d,%d) vs uniform (%d,%d)", i, sa, sb, ua, ub)
		}
	}
	// The captured recordings deal identical schedules too.
	ra := recSampler.Recording()
	rb := recUniform.Recording()
	if ra.Len() != pairs || rb.Len() != pairs {
		t.Fatalf("recordings hold %d/%d pairs, want %d", ra.Len(), rb.Len(), pairs)
	}
	pa, pb := ra.Replay(), rb.Replay()
	for i := 0; i < pairs; i++ {
		sa, sb := pa.Pair(n)
		ua, ub := pb.Pair(n)
		if sa != ua || sb != ub {
			t.Fatalf("replayed pair %d diverges", i)
		}
	}
}

// TestCompleteTopologyRunBitIdentical: a run with an explicit Complete()
// topology equals the zero-config run bit for bit — results, events, ranks.
func TestCompleteTopologyRunBitIdentical(t *testing.T) {
	run := func(top Topology) (Result, string, []int) {
		sys, err := New(Config{N: 24, R: 6, Seed: 11, Topology: top})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryTwoLeaders, 12); err != nil {
			t.Fatal(err)
		}
		res := sys.Run(SchedulerSeed(13))
		return res, sys.Events(), sys.Ranks()
	}
	r1, e1, k1 := run(Topology{}) // zero value: the historical configuration
	r2, e2, k2 := run(Complete())
	if r1 != r2 || e1 != e2 {
		t.Fatalf("explicit Complete() diverges: %+v/%s vs %+v/%s", r1, e1, r2, e2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("ranks diverge at agent %d", i)
		}
	}
}

// TestTopologyRecorderReplayRoundTrip: a topology run recorded once (as
// edge indices) and replayed on a fresh identical system reproduces the
// identical trajectory, on the ring and on a random regular graph.
func TestTopologyRecorderReplayRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"ring", Config{Protocol: ProtocolNameRank, N: 16, Seed: 3, Topology: Ring()}},
		{"random-regular", Config{N: 16, R: 4, Seed: 1, Topology: RandomRegular(8)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			build := func() *System {
				sys, err := New(c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			rec := NewRecorder(build().Sampler(9))
			first := build()
			res1 := first.Run(WithScheduler(rec))
			if !res1.Stabilized {
				t.Fatal("recorded run did not stabilize")
			}
			recording := rec.Recording()
			if uint64(recording.Len()) != res1.Interactions {
				t.Fatalf("recording holds %d interactions, run executed %d",
					recording.Len(), res1.Interactions)
			}
			second := build()
			res2 := second.Run(WithScheduler(recording.Replay()))
			if res1 != res2 {
				t.Fatalf("replayed result %+v differs from recorded %+v", res2, res1)
			}
			r1, r2 := first.Ranks(), second.Ranks()
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("replayed ranks diverge at agent %d", i)
				}
			}
			if first.Events() != second.Events() {
				t.Fatalf("replayed events diverge:\n%s\n%s", first.Events(), second.Events())
			}
		})
	}
}

// TestTopologyRunDeterministic: two identical topology systems run under
// the same scheduler seed produce identical results — the random graph is
// drawn from Config.Seed, not from shared global state.
func TestTopologyRunDeterministic(t *testing.T) {
	run := func() Result {
		sys, err := New(Config{N: 16, R: 4, Seed: 5, Topology: RandomRegular(8)})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(SchedulerSeed(6))
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Fatalf("non-deterministic topology run: %+v vs %+v", r1, r2)
	}
}

// TestSpeciesTopologyFailsFast is the capability-table gate, one unit test
// per registry protocol: Backend species (and auto at the species
// threshold) combined with a non-complete topology must fail at
// construction — the species backend samples state pairs and has no agent
// adjacency — and never silently fall back.
func TestSpeciesTopologyFailsFast(t *testing.T) {
	for _, info := range Protocols() {
		t.Run(info.Name, func(t *testing.T) {
			_, err := New(Config{Protocol: info.Name, N: 16, R: 4, Seed: 1,
				Backend: BackendSpecies, Topology: Ring()})
			if err == nil {
				t.Fatalf("%s: species backend accepted a ring topology", info.Name)
			}
			compactable := hasCapability(info.Capabilities, CapabilityCompactable)
			if compactable && !strings.Contains(err.Error(), "capability table") {
				t.Fatalf("%s: error does not point at the capability table: %v", info.Name, err)
			}
			if !compactable && !strings.Contains(err.Error(), "species form") {
				t.Fatalf("%s: unexpected error: %v", info.Name, err)
			}
			// BackendAuto at the threshold resolves to species for
			// compactable protocols and must fail the same way, before any
			// population is built.
			if compactable {
				_, err := New(Config{Protocol: info.Name, N: SpeciesAutoThreshold, Seed: 1,
					Backend: BackendAuto, Topology: Ring()})
				if err == nil || !strings.Contains(err.Error(), "capability table") {
					t.Fatalf("%s: auto at n=2^16 with a ring topology: %v", info.Name, err)
				}
			}
		})
	}
}

// TestTopologyValidation: unbuildable topology parameters fail System
// construction with a topology-naming error.
func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"odd-degree odd-n", Config{N: 15, R: 3, Topology: RandomRegular(3)}},
		{"degree too large", Config{N: 4, R: 2, Topology: RandomRegular(8)}},
		{"bad density", Config{N: 16, R: 4, Topology: ErdosRenyi(2)}},
		{"nil generator", Config{N: 16, R: 4, Topology: NewTopology("broken", nil)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Fatalf("config %+v accepted", c.cfg)
			}
		})
	}
	// Valid families construct and report their materialized edge count.
	sys, err := New(Config{N: 16, R: 4, Topology: Torus2D()})
	if err != nil {
		t.Fatal(err)
	}
	if name, edges := sys.Topology(); name != "torus" || edges != 64 {
		t.Fatalf("Topology() = (%q, %d), want (torus, 64)", name, edges)
	}
	if name, edges := mustSys(t, Config{N: 16, R: 4}).Topology(); name != "complete" || edges != 0 {
		t.Fatalf("Topology() = (%q, %d), want (complete, 0)", name, edges)
	}
}

// mustSys builds a System or fails the test.
func mustSys(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestEnsembleTopologyAxis: Grid.Topologies crosses topologies as a cell
// axis — cells are topology-stamped in declaration order, the JSON export
// is byte-identical for every worker count, and Compare rows carry the
// topology.
func TestEnsembleTopologyAxis(t *testing.T) {
	grid := Grid{
		Protocols:       []string{ProtocolNameRank, ProtocolFastLE},
		Topologies:      []Topology{Complete(), Ring()},
		Points:          []Point{{N: 16}},
		Seeds:           2,
		BaseSeed:        5,
		MaxInteractions: 500_000,
	}
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		ens, err := NewEnsemble(grid, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res := ens.Run()
		if len(res.Cells) != 4 {
			t.Fatalf("cells = %d, want 4", len(res.Cells))
		}
		wantOrder := []struct{ proto, topo string }{
			{ProtocolNameRank, "complete"}, {ProtocolNameRank, "ring"},
			{ProtocolFastLE, "complete"}, {ProtocolFastLE, "ring"},
		}
		for i, c := range res.Cells {
			if c.Protocol != wantOrder[i].proto || c.Topology != wantOrder[i].topo {
				t.Fatalf("cell %d = (%s, %s), want (%s, %s)",
					i, c.Protocol, c.Topology, wantOrder[i].proto, wantOrder[i].topo)
			}
			if c.Recovered == 0 {
				t.Fatalf("cell %d (%s on %s) never recovered", i, c.Protocol, c.Topology)
			}
		}
		// The ring must be strictly slower than the complete graph for the
		// broadcast-based namerank — the observable convergence gap.
		complete, _ := res.TopologyCell(ProtocolNameRank, "complete", Point{N: 16}, "")
		ring, _ := res.TopologyCell(ProtocolNameRank, "ring", Point{N: 16}, "")
		if ring.Interactions.Mean <= complete.Interactions.Mean {
			t.Fatalf("ring (%f) not slower than complete (%f)",
				ring.Interactions.Mean, complete.Interactions.Mean)
		}
		blob, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		cmp := res.Compare()
		if len(cmp.Rows) != 2 || cmp.Rows[0].Topology != "complete" || cmp.Rows[1].Topology != "ring" {
			t.Fatalf("compare rows mis-pivoted: %+v", cmp.Rows)
		}
		cb, err := cmp.JSON()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, cb)
	}
	if !bytes.Equal(blobs[0], blobs[2]) || !bytes.Equal(blobs[1], blobs[3]) {
		t.Fatal("topology-crossed ensemble JSON differs across worker counts")
	}
}

// TestEnsembleWithoutTopologiesOmitsStamp: grids that do not cross
// topologies keep the pre-topology JSON layout — no "topolog..." keys
// anywhere.
func TestEnsembleWithoutTopologiesOmitsStamp(t *testing.T) {
	ens, err := NewEnsemble(Grid{
		Protocols: []string{ProtocolNameRank},
		Points:    []Point{{N: 16}},
		Seeds:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := ens.Run()
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("topolog")) {
		t.Fatalf("un-crossed grid stamps topology:\n%s", blob)
	}
	cb, err := res.Compare().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(cb, []byte("topolog")) {
		t.Fatalf("un-crossed compare stamps topology:\n%s", cb)
	}
}

// TestEnsembleSpeciesTopologyRejected: a grid whose backend resolution
// lands on the species backend rejects non-complete topologies at
// NewEnsemble time, with the capability-table error.
func TestEnsembleSpeciesTopologyRejected(t *testing.T) {
	_, err := NewEnsemble(Grid{
		Protocols:  []string{ProtocolCIW},
		Topologies: []Topology{Ring()},
		Points:     []Point{{N: 64}},
		Backend:    BackendSpecies,
		Seeds:      2,
	})
	if err == nil || !strings.Contains(err.Error(), "capability table") {
		t.Fatalf("species × ring grid: %v", err)
	}
	// Unbuildable topology parameters are rejected up front too.
	_, err = NewEnsemble(Grid{
		Protocols:  []string{ProtocolNameRank},
		Topologies: []Topology{RandomRegular(3)},
		Points:     []Point{{N: 15}},
		Seeds:      2,
	})
	if err == nil || !strings.Contains(err.Error(), "random-regular") {
		t.Fatalf("odd-degree odd-n grid: %v", err)
	}
	// A density whose draws are disconnected at some trial seed is rejected
	// up front: every such trial would be silently aggregated as a failure
	// to stabilize.
	_, err = NewEnsemble(Grid{
		Protocols:  []string{ProtocolNameRank},
		Topologies: []Topology{ErdosRenyi(0.08)},
		Points:     []Point{{N: 32}},
		Seeds:      5,
	})
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("sparse disconnected ER grid: %v", err)
	}
}

// TestTopologyRejectsPairLawSchedulers: schedulers that deal pairs from
// [n]² (batch, zipf, weighted, pair-mode recordings) fail a topology run
// up front instead of silently simulating the complete graph; topology-
// aware ones (Sampler, a Recorder around it, edge-indexed replays) pass.
func TestTopologyRejectsPairLawSchedulers(t *testing.T) {
	newSys := func() *System {
		return mustSys(t, Config{Protocol: ProtocolNameRank, N: 16, Seed: 3, Topology: Ring()})
	}
	pairRec := NewRecorder(NewUniform(4))
	pairRec.Pair(16)
	rejected := map[string]Scheduler{
		"batch":            NewBatch(4, 64),
		"zipf":             NewZipf(4, 16, 0.8),
		"weighted":         NewWeighted(4, []float64{1, 2, 3, 4}),
		"uniform recorder": NewRecorder(NewUniform(4)),
		"pair-mode replay": pairRec.Recording().Replay(),
	}
	for name, sched := range rejected {
		res := newSys().Run(WithScheduler(sched))
		if res.Err == nil || res.Interactions != 0 {
			t.Errorf("%s scheduler accepted on a ring topology: %+v", name, res)
		}
	}
	sys := newSys()
	accepted := map[string]Scheduler{
		"sampler":          sys.Sampler(5),
		"sampler recorder": NewRecorder(newSys().Sampler(5)),
	}
	for name, sched := range accepted {
		res := newSys().Run(WithScheduler(sched))
		if res.Err != nil {
			t.Errorf("%s scheduler rejected on a ring topology: %v", name, res.Err)
		}
	}
	// A topology schedule from a DIFFERENT graph — another population size
	// or family — is rejected too: replaying it here would run off-graph
	// pairs under this system's topology label.
	other := mustSys(t, Config{Protocol: ProtocolNameRank, N: 32, Seed: 3, Topology: Ring()})
	if res := newSys().Run(WithScheduler(other.Sampler(5))); res.Err == nil {
		t.Error("sampler of a 32-agent ring accepted on a 16-agent ring system")
	}
	torus := mustSys(t, Config{Protocol: ProtocolNameRank, N: 16, Seed: 3, Topology: Torus2D()})
	if res := newSys().Run(WithScheduler(torus.Sampler(5))); res.Err == nil {
		t.Error("torus sampler accepted on a ring system")
	}

	// StepSched panics on a pair-law scheduler, like the species contract.
	defer func() {
		if recover() == nil {
			t.Error("StepSched accepted a batch scheduler on a ring topology")
		}
	}()
	newSys().StepSched(NewBatch(4, 64), 10)
}

// TestTopologyConnected: the union-find connectivity check is reachable
// through the public surface — complete and ring are connected, a sparse
// Erdős–Rényi draw is detectably not.
func TestTopologyConnected(t *testing.T) {
	if !mustSys(t, Config{N: 16, R: 4}).TopologyConnected() {
		t.Error("complete topology reported disconnected")
	}
	if !mustSys(t, Config{N: 16, R: 4, Topology: Ring()}).TopologyConnected() {
		t.Error("ring reported disconnected")
	}
	// At p = 0.08 and n = 32 a draw is essentially never connected; scan a
	// few seeds so the test does not hinge on one.
	sawDisconnected := false
	for seed := uint64(0); seed < 10 && !sawDisconnected; seed++ {
		sys, err := New(Config{N: 32, R: 8, Seed: seed, Topology: ErdosRenyi(0.08)})
		if err != nil {
			continue // the draw had no edges at all — also a detected failure
		}
		sawDisconnected = !sys.TopologyConnected()
	}
	if !sawDisconnected {
		t.Error("no disconnected sparse ER draw detected across 10 seeds")
	}
}

// TestStepOnTopologyStaysOnGraph: Step and StepSched sample the system's
// edge set — on a two-agent line, only the pair (0, 1) in either order can
// ever interact; under a ring of 16 nothing outside the ring edges fires.
// Observable through namerank: after many steps on a ring, names can only
// have traveled along ring edges — here we simply assert the run advances
// and the clock counts.
func TestStepOnTopologyStaysOnGraph(t *testing.T) {
	sys := mustSys(t, Config{Protocol: ProtocolNameRank, N: 16, Seed: 3, Topology: Ring()})
	sys.Step(4, 100)
	if sys.Interactions() != 100 {
		t.Fatalf("clock = %d, want 100", sys.Interactions())
	}
	sys.StepSched(NewUniform(5), 50)
	if sys.Interactions() != 150 {
		t.Fatalf("clock = %d, want 150", sys.Interactions())
	}
}

// BenchmarkRunCompleteDefault and BenchmarkRunCompleteExplicit pin the
// zero-overhead claim of the topology refactor: an explicit Complete()
// topology runs the identical engine loop as the historical zero-value
// configuration (the non-complete path is benchmarked separately below and
// in internal/sim).
func benchRun(b *testing.B, top Topology) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sys, err := New(Config{Protocol: ProtocolCIW, N: 256, Seed: 1, Topology: top})
		if err != nil {
			b.Fatal(err)
		}
		sys.Step(2, 100_000)
	}
}

func BenchmarkRunCompleteDefault(b *testing.B)  { benchRun(b, Topology{}) }
func BenchmarkRunCompleteExplicit(b *testing.B) { benchRun(b, Complete()) }
func BenchmarkRunRing(b *testing.B)             { benchRun(b, Ring()) }

// TestParseTopologyRoundTrip pins ParseTopology as the inverse of Name for
// every built-in family, in both the Name() spelling and the historical
// benchtab flag spelling; unknown and malformed names are rejected.
func TestParseTopologyRoundTrip(t *testing.T) {
	for _, top := range []Topology{
		Complete(), Ring(), Torus2D(), RandomRegular(8), ErdosRenyi(0.1),
	} {
		got, err := ParseTopology(top.Name())
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", top.Name(), err)
		}
		if got.Name() != top.Name() {
			t.Fatalf("ParseTopology(%q).Name() = %q", top.Name(), got.Name())
		}
	}
	for name, want := range map[string]string{
		"":                  "complete",
		"random-regular=8":  "random-regular(8)",
		"erdos-renyi=0.1":   "erdos-renyi(0.1)",
		"erdos-renyi=0.125": "erdos-renyi(0.125)",
	} {
		got, err := ParseTopology(name)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", name, err)
		}
		if got.Name() != want {
			t.Fatalf("ParseTopology(%q).Name() = %q, want %q", name, got.Name(), want)
		}
	}
	for _, name := range []string{"mesh", "random-regular(x)", "random-regular(8", "erdos-renyi", "erdos-renyi(pi)"} {
		if _, err := ParseTopology(name); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", name)
		}
	}
}
