// capability_test.go pins the full capability-dispatch matrix: every
// registry protocol × every optional engine capability, on both backends. A
// capability is a structural type assertion at the engine's call sites, so
// an accidental method rename or a refactor that drops an interface would
// silently change engine behaviour (wrong safe-set fallback, lost
// injection, no species form); this table makes any such drift a test
// failure that names the protocol and the capability.

package sspp

import (
	"testing"

	"sspp/internal/sim"
)

// capabilityProbes enumerates every optional capability the engine
// dispatches on, as structural probes over the built protocol.
var capabilityProbes = []struct {
	name  string
	probe func(p sim.Protocol) bool
}{
	{CapabilityRanker, func(p sim.Protocol) bool { _, ok := p.(sim.Ranker); return ok }},
	{CapabilitySafeSet, func(p sim.Protocol) bool { _, ok := p.(sim.SafeSetter); return ok }},
	{CapabilityInjectable, func(p sim.Protocol) bool { _, ok := p.(sim.Injectable); return ok }},
	{CapabilitySnapshotter, func(p sim.Protocol) bool { _, ok := p.(sim.Snapshotter); return ok }},
	{CapabilityCompactable, func(p sim.Protocol) bool { _, ok := p.(sim.Compactable); return ok }},
	{"count-based", func(p sim.Protocol) bool { _, ok := p.(sim.CountBased); return ok }},
	{"clocked", func(p sim.Protocol) bool { _, ok := p.(sim.Clocked); return ok }},
	{"ranking-checker", func(p sim.Protocol) bool {
		_, ok := p.(interface{ CorrectRanking() bool })
		return ok
	}},
	{"leader-indexer", func(p sim.Protocol) bool { _, ok := sim.AsLeaderIndexer(p); return ok }},
}

// TestCapabilityDispatchMatrix enumerates protocol × capability × backend
// and asserts exactly which type assertions succeed.
func TestCapabilityDispatchMatrix(t *testing.T) {
	type row struct {
		protocol string
		backend  string
		want     map[string]bool
	}
	rows := []row{
		{ProtocolElectLeader, BackendAgent, map[string]bool{
			CapabilityRanker: true, CapabilitySafeSet: true, CapabilityInjectable: true,
			CapabilitySnapshotter: true, CapabilityCompactable: true,
			"ranking-checker": true, "clocked": true, "leader-indexer": true,
		}},
		{ProtocolCIW, BackendAgent, map[string]bool{
			CapabilityRanker: true, CapabilitySafeSet: true, CapabilityInjectable: true,
			CapabilityCompactable: true, "ranking-checker": true, "leader-indexer": true,
		}},
		{ProtocolNameRank, BackendAgent, map[string]bool{
			CapabilityRanker: true, CapabilitySafeSet: true, CapabilityCompactable: true,
			"ranking-checker": true, "leader-indexer": true,
		}},
		{ProtocolLooseLE, BackendAgent, map[string]bool{
			CapabilityInjectable: true, CapabilityCompactable: true, "leader-indexer": true,
		}},
		{ProtocolFastLE, BackendAgent, map[string]bool{
			CapabilitySafeSet: true, "leader-indexer": true,
		}},
		// The species backend swaps the protocol for its count-based form:
		// per-agent capabilities (ranks, injection) disappear, the safe set
		// survives exactly when the compact model defines one, and the
		// count-based + clocked capabilities appear.
		{ProtocolCIW, BackendSpecies, map[string]bool{
			CapabilitySafeSet: true, "count-based": true, "clocked": true,
			"ranking-checker": true,
		}},
		{ProtocolNameRank, BackendSpecies, map[string]bool{
			CapabilitySafeSet: true, "count-based": true, "clocked": true,
			"ranking-checker": true,
		}},
		{ProtocolLooseLE, BackendSpecies, map[string]bool{
			"count-based": true, "clocked": true, "ranking-checker": true,
		}},
		// ElectLeader_r's species form (internal/core/compact.go): the safe
		// set survives — the compact model checks Lemma 6.1 over counts —
		// but per-agent surfaces (ranks, injection, snapshots, the leader's
		// index) do not exist in a multiset.
		{ProtocolElectLeader, BackendSpecies, map[string]bool{
			CapabilitySafeSet: true, "count-based": true, "clocked": true,
			"ranking-checker": true,
		}},
	}
	for _, r := range rows {
		cfg := Config{Protocol: r.protocol, N: 16, R: 4, Seed: 1, Backend: r.backend}
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", r.protocol, r.backend, err)
		}
		for _, c := range capabilityProbes {
			if got := c.probe(sys.proto); got != r.want[c.name] {
				t.Errorf("%s/%s: capability %q = %v, want %v",
					r.protocol, r.backend, c.name, got, r.want[c.name])
			}
		}
		if got := sys.Backend(); got != r.backend {
			t.Errorf("%s: Backend() = %q, want %q", r.protocol, got, r.backend)
		}
	}
}

// TestRankerImpliesRankingChecker: the narrow ranking-checker probe the
// engine uses for CorrectRanking must cover every full Ranker, so widening
// the dispatch can never drop a protocol.
func TestRankerImpliesRankingChecker(t *testing.T) {
	for name, cfg := range registryConfigs() {
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sys.proto.(sim.Ranker); !ok {
			continue
		}
		if _, ok := sys.proto.(interface{ CorrectRanking() bool }); !ok {
			t.Errorf("%s: Ranker without CorrectRanking dispatch", name)
		}
	}
}

// TestCapabilitiesReflectBackend: the public Capabilities() surface must
// report the running backend's capability set, and the catalogue
// (Protocols()) the agent-level one including compactability.
func TestCapabilitiesReflectBackend(t *testing.T) {
	agent, err := New(Config{Protocol: ProtocolCIW, N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCapability(agent.Capabilities(), CapabilityCompactable) {
		t.Fatalf("agent CIW capabilities %v lack %q", agent.Capabilities(), CapabilityCompactable)
	}
	spec, err := New(Config{Protocol: ProtocolCIW, N: 16, Seed: 1, Backend: BackendSpecies})
	if err != nil {
		t.Fatal(err)
	}
	caps := spec.Capabilities()
	if hasCapability(caps, CapabilityInjectable) || hasCapability(caps, CapabilityRanker) {
		t.Fatalf("species CIW capabilities %v report per-agent surfaces", caps)
	}
	if !hasCapability(caps, CapabilitySafeSet) {
		t.Fatalf("species CIW capabilities %v lost the safe set", caps)
	}
}

// hasCapability reports whether caps contains name.
func hasCapability(caps []string, name string) bool {
	for _, c := range caps {
		if c == name {
			return true
		}
	}
	return false
}
