// workload_test.go covers the workload layer's public surface: schedule
// compilation and validation through Run, churn with a live population size,
// per-event recovery reporting, the versioned trace format with its
// bit-exact cross-backend replay guarantee (the acceptance property of the
// robustness PR), and the Ensemble workload mode with worker-count-identical
// JSON.

package sspp

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"sspp/internal/sim"
)

// censusOf snapshots a system's state multiset: by state key on the agent
// backend (protocols with the state-key capability), by counts on the
// species backend.
func censusOf(t *testing.T, s *System) map[uint64]int64 {
	t.Helper()
	if keyer, ok := s.proto.(sim.StateKeyer); ok {
		m := make(map[uint64]int64)
		for i := 0; i < s.N(); i++ {
			m[keyer.StateKey(i)]++
		}
		return m
	}
	if cv, ok := s.proto.(sim.CountView); ok {
		m := make(map[uint64]int64)
		cv.Each(func(k uint64, c int64) bool {
			m[k] = c
			return true
		})
		return m
	}
	t.Fatalf("protocol %q exposes no census capability", s.ProtocolName())
	return nil
}

// equalCensus compares two state multisets.
func equalCensus(a, b map[uint64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, c := range a {
		if b[k] != c {
			return false
		}
	}
	return true
}

// churnFaultWorkload is the mixed churn+fault schedule of the cross-backend
// replay property: a transient burst, periodic join/leave churn, and a
// population step, all within the first maxT interactions.
func churnFaultWorkload() *Workload {
	return NewWorkload(
		TransientBurst(1000, 32, 11),
		ChurnBursts(500, 4001, 1000, 2, 3, "", 12),
		PopulationStep(2500, 5, AdversaryRandomGarbage, 13),
	)
}

// TestWorkloadTraceCrossBackendReplay is the acceptance property of the
// workload layer: a recorded churn+fault workload replays bit-exactly —
// identical final state multiset — on a fresh agent system and on a fresh
// species system, for ciw and loosele at n = 10⁴.
func TestWorkloadTraceCrossBackendReplay(t *testing.T) {
	const n = 10_000
	const maxT = 6_000
	for _, proto := range []string{ProtocolCIW, ProtocolLooseLE} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Protocol: proto, N: n, Seed: 5}
			rec, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var tr *WorkloadTrace
			res := rec.Run(SchedulerSeed(9), MaxInteractions(maxT),
				WithWorkload(churnFaultWorkload()), RecordTrace(&tr))
			if res.Err != nil {
				t.Fatalf("recording run: %v", res.Err)
			}
			if tr == nil {
				t.Fatal("no trace recorded")
			}
			if tr.Version() != 1 || tr.Steps() != res.Interactions {
				t.Fatalf("trace version %d, steps %d (run executed %d)",
					tr.Version(), tr.Steps(), res.Interactions)
			}
			fired := 0
			for _, eo := range res.EventOutcomes() {
				if eo.Fired {
					fired++
				}
			}
			if fired == 0 || tr.Events() != fired {
				t.Fatalf("trace carries %d events, run fired %d", tr.Events(), fired)
			}
			want := censusOf(t, rec)
			if rec.N() == n {
				t.Fatal("churn schedule left the population size unchanged — the property would be vacuous")
			}

			// Round-trip the trace through its wire format first: the replayed
			// bytes must decode to the identical schedule.
			var buf bytes.Buffer
			if err := tr.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeWorkloadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}

			agentReplay, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := agentReplay.ReplayTrace(decoded); err != nil {
				t.Fatalf("agent replay: %v", err)
			}
			if got := censusOf(t, agentReplay); !equalCensus(want, got) {
				t.Fatalf("agent replay diverged: %d states vs %d", len(got), len(want))
			}

			speciesCfg := cfg
			speciesCfg.Backend = BackendSpecies
			speciesReplay, err := New(speciesCfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := speciesReplay.ReplayTrace(decoded); err != nil {
				t.Fatalf("species replay: %v", err)
			}
			if speciesReplay.N() != rec.N() {
				t.Fatalf("species replay population %d, recording ended at %d", speciesReplay.N(), rec.N())
			}
			if got := censusOf(t, speciesReplay); !equalCensus(want, got) {
				t.Fatalf("species replay diverged: %d states vs %d", len(got), len(want))
			}
		})
	}
}

// TestReplayTraceValidation: replays on the wrong protocol, population or
// backend fail fast instead of corrupting state.
func TestReplayTraceValidation(t *testing.T) {
	rec, err := New(Config{Protocol: ProtocolCIW, N: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var tr *WorkloadTrace
	if res := rec.Run(SchedulerSeed(3), MaxInteractions(200), RecordTrace(&tr)); res.Err != nil {
		t.Fatal(res.Err)
	}
	if tr == nil {
		t.Fatal("no trace")
	}
	wrongProto, _ := New(Config{Protocol: ProtocolLooseLE, N: 64, Seed: 2})
	if err := wrongProto.ReplayTrace(tr); err == nil {
		t.Error("replay accepted on the wrong protocol")
	}
	wrongN, _ := New(Config{Protocol: ProtocolCIW, N: 32, Seed: 2})
	if err := wrongN.ReplayTrace(tr); err == nil {
		t.Error("replay accepted at the wrong population size")
	}
	if err := rec.ReplayTrace(nil); err == nil {
		t.Error("nil trace accepted")
	}
}

// TestRecordTraceRequiresAgentCompleteTopology: recording rejects the
// species backend and non-complete topologies up front, with zero
// interactions executed.
func TestRecordTraceRequiresAgentCompleteTopology(t *testing.T) {
	var tr *WorkloadTrace
	species, err := New(Config{Protocol: ProtocolCIW, N: 64, Seed: 2, Backend: BackendSpecies})
	if err != nil {
		t.Fatal(err)
	}
	if res := species.Run(SchedulerSeed(3), RecordTrace(&tr)); res.Err == nil || res.Interactions != 0 {
		t.Errorf("species recording: err=%v after %d interactions", res.Err, res.Interactions)
	}
	ring, err := New(Config{Protocol: ProtocolCIW, N: 64, Seed: 2, Topology: Ring()})
	if err != nil {
		t.Fatal(err)
	}
	if res := ring.Run(SchedulerSeed(3), RecordTrace(&tr)); res.Err == nil || res.Interactions != 0 {
		t.Errorf("ring recording: err=%v after %d interactions", res.Err, res.Interactions)
	}
}

// TestWorkloadChurnRequiresCompleteTopology: churn schedules on non-complete
// topologies are rejected capability-table style, before any interaction.
func TestWorkloadChurnRequiresCompleteTopology(t *testing.T) {
	sys, err := New(Config{Protocol: ProtocolCIW, N: 64, Seed: 2, Topology: Ring()})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(SchedulerSeed(3), WithWorkload(NewWorkload(LeaveAt(10, 4), JoinAt(10, "", 5))))
	if res.Err == nil || res.Interactions != 0 {
		t.Fatalf("churn on a ring: err=%v after %d interactions", res.Err, res.Interactions)
	}
	if !strings.Contains(res.Err.Error(), "complete topology") {
		t.Fatalf("error does not name the topology restriction: %v", res.Err)
	}
}

// TestWorkloadChurnCapabilityValidation: churn schedules on protocols
// without the churnable capability fail up front; replacement-only
// protocols (electleader) reject unbalanced churn but absorb replacement
// pairs.
func TestWorkloadChurnCapabilityValidation(t *testing.T) {
	noChurn, err := New(Config{Protocol: ProtocolNameRank, N: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := noChurn.Run(SchedulerSeed(3), WithWorkload(NewWorkload(LeaveAt(10, 4), JoinAt(10, "", 5))))
	if res.Err == nil || res.Interactions != 0 {
		t.Fatalf("churn on namerank: err=%v after %d interactions", res.Err, res.Interactions)
	}

	elect, err := New(Config{N: 16, R: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res = elect.Run(SchedulerSeed(3), WithWorkload(NewWorkload(LeaveAt(10, 4))))
	if res.Err == nil || res.Interactions != 0 {
		t.Fatalf("unbalanced churn on electleader: err=%v after %d interactions", res.Err, res.Interactions)
	}
	if !strings.Contains(res.Err.Error(), "replacement churn") {
		t.Fatalf("error does not explain the replacement-only restriction: %v", res.Err)
	}
	res = elect.Run(SchedulerSeed(3), WithWorkload(NewWorkload(ReplacementChurn(0, 2000, 4, "", 7))),
		MaxInteractions(200_000))
	if res.Err != nil {
		t.Fatalf("replacement churn on electleader: %v", res.Err)
	}
	if elect.N() != 16 {
		t.Fatalf("replacement churn changed n to %d", elect.N())
	}
}

// TestWorkloadDynamicPopulation: a drifting-n schedule on ciw keeps the
// engine's view of the population consistent — N() tracks the events, the
// run recovers, and ParallelTime accrues per segment at the live population
// size (each interaction contributes 1/n_live, not 1/n₀).
func TestWorkloadDynamicPopulation(t *testing.T) {
	const n0 = 32
	sys, err := New(Config{Protocol: ProtocolCIW, N: n0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wl := NewWorkload(
		PopulationStep(100, 8, "", 6),   // 32 -> 40
		PopulationStep(300, -16, "", 7), // 40 -> 24
	)
	res := sys.Run(SchedulerSeed(5), WithWorkload(wl))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if sys.N() != 24 {
		t.Fatalf("N = %d after the schedule, want 24", sys.N())
	}
	if !res.Stabilized {
		t.Fatal("ciw did not re-stabilize after the population steps")
	}
	// Per-segment parallel time: [0,100) at n=32, [100,300) at 40, then the
	// remainder at 24 — not StabilizedAt/n₀.
	want := 100.0/32 + 200.0/40 + float64(res.StabilizedAt-300)/24
	if res.ParallelTime != want {
		t.Fatalf("ParallelTime %.6f not accrued at the live population sizes (want %.6f)", res.ParallelTime, want)
	}
	if anchored := float64(res.StabilizedAt) / float64(n0); res.ParallelTime == anchored {
		t.Fatalf("ParallelTime %.6f is still anchored at n0=%d", res.ParallelTime, n0)
	}
	outs := res.EventOutcomes()
	if len(outs) != 24 {
		t.Fatalf("%d event outcomes, want 24", len(outs))
	}
	for i, eo := range outs {
		if !eo.Fired {
			t.Fatalf("event %d (%s at %d) did not fire", i, eo.Kind, eo.At)
		}
		if !eo.Recovered || eo.RecoveredAt < eo.At {
			t.Fatalf("event %d (%s at %d): recovered=%v at %d", i, eo.Kind, eo.At, eo.Recovered, eo.RecoveredAt)
		}
	}
	if outs[0].Kind != "join" || outs[8].Kind != "leave" {
		t.Fatalf("event kinds: first %q (want join), ninth %q (want leave)", outs[0].Kind, outs[8].Kind)
	}
	if outs[7].N != 40 || outs[23].N != 24 {
		t.Fatalf("population after steps: %d then %d, want 40 then 24", outs[7].N, outs[23].N)
	}
}

// TestWorkloadAwaitsAllEvents: unlike bare InjectTransientAt, a workload run
// does not stop at the first stabilization — every scheduled event fires
// (the per-event recovery semantics), and the legacy InjectTransientAt
// early-stop contract stays untouched.
func TestWorkloadAwaitsAllEvents(t *testing.T) {
	mk := func() *System {
		sys, err := New(Config{N: 16, R: 4, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if res := sys.Run(SchedulerSeed(22)); !res.Stabilized {
			t.Fatal("setup failed")
		}
		return sys
	}
	// Legacy contract: a burst scheduled past the (immediate) stop does not
	// fire.
	legacy := mk().Run(SchedulerSeed(23), InjectTransientAt(1_000_000, 3, 9))
	if legacy.Err != nil || !legacy.Stabilized {
		t.Fatalf("legacy run: %+v", legacy)
	}
	for _, eo := range legacy.EventOutcomes() {
		if eo.Fired {
			t.Fatal("InjectTransientAt fired past the stop")
		}
	}
	// Workload contract: the same burst keeps the run alive until it fires
	// and recovery is observed.
	wl := mk().Run(SchedulerSeed(23), WithWorkload(NewWorkload(TransientBurst(50_000, 3, 9))))
	if wl.Err != nil || !wl.Stabilized {
		t.Fatalf("workload run: %+v", wl)
	}
	outs := wl.EventOutcomes()
	if len(outs) != 1 || !outs[0].Fired || !outs[0].Recovered {
		t.Fatalf("workload outcomes: %+v", outs)
	}
	if wl.Interactions < 50_000 {
		t.Fatalf("run stopped at %d, before the scheduled burst", wl.Interactions)
	}
}

// TestResultStaysComparable: schedule-free results keep the historical
// bit-identity contract (Result compared with ==).
func TestResultStaysComparable(t *testing.T) {
	run := func() Result {
		sys, err := New(Config{N: 16, R: 4, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(SchedulerSeed(32))
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("identical runs differ: %+v vs %+v", r1, r2)
	}
	if r1.Events != nil || r1.EventOutcomes() != nil {
		t.Fatal("schedule-free run carries event outcomes")
	}
}

// TestEnsembleWorkloadMode: the Grid.Workload recovery mode aggregates
// per-event recovery into Cell.Events and its JSON is byte-identical for
// every worker count.
func TestEnsembleWorkloadMode(t *testing.T) {
	grid := Grid{
		Protocols: []string{ProtocolElectLeader, ProtocolCIW},
		Points:    []Point{{N: 16, R: 4}},
		Seeds:     3,
		BaseSeed:  11,
		Workload: NewWorkload(
			ReplacementChurn(0, 400, 2, "", 41),
			TransientBurst(200, 3, 42),
		),
	}
	ens, err := NewEnsemble(grid)
	if err != nil {
		t.Fatal(err)
	}
	res := ens.Run()
	for _, cell := range res.Cells {
		if cell.Recovered != cell.Seeds {
			t.Fatalf("cell %s: %d/%d recovered", cell.Protocol, cell.Recovered, cell.Seeds)
		}
		if len(cell.Events) == 0 {
			t.Fatalf("cell %s carries no event aggregation", cell.Protocol)
		}
		for i, ec := range cell.Events {
			if ec.Fired != cell.Seeds {
				t.Fatalf("cell %s event %d: fired %d/%d", cell.Protocol, i, ec.Fired, cell.Seeds)
			}
			if ec.Recovered != cell.Seeds || ec.Recovery.N != cell.Seeds {
				t.Fatalf("cell %s event %d: recovered %d, recovery samples %d",
					cell.Protocol, i, ec.Recovered, ec.Recovery.N)
			}
		}
		// The same schedule must appear in every cell of the point: the
		// phases carry their own seeds.
		if fmt.Sprint(cell.Events[0].At) != fmt.Sprint(res.Cells[0].Events[0].At) {
			t.Fatalf("schedules diverge across cells")
		}
	}

	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	seqEns, _ := NewEnsemble(grid, Workers(1))
	parEns, _ := NewEnsemble(grid, Workers(parallel))
	seq, err1 := seqEns.Run().JSON()
	par, err2 := parEns.Run().JSON()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("workload ensemble JSON differs across worker counts")
	}
	base, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, base) {
		t.Fatal("workload ensemble JSON differs from the default-worker run")
	}
}

// TestEnsembleWorkloadValidation: the workload mode is exclusive with
// TransientK, rejects species trials, and checks the capability footprint
// per protocol up front.
func TestEnsembleWorkloadValidation(t *testing.T) {
	churn := NewWorkload(ReplacementChurn(0, 400, 2, "", 41))
	faults := NewWorkload(TransientBurst(100, 2, 42))

	g := Grid{Points: []Point{{N: 16, R: 4}}, Seeds: 2, Workload: churn, TransientK: 2}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("Workload + TransientK accepted")
	}

	g = Grid{Protocols: []string{ProtocolCIW}, Backend: BackendSpecies,
		Points: []Point{{N: 64}}, Seeds: 2, Workload: churn}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("species workload grid accepted")
	}

	g = Grid{Protocols: []string{ProtocolNameRank}, Points: []Point{{N: 16}}, Seeds: 2, Workload: churn}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("churn workload accepted for a non-churnable protocol")
	}

	g = Grid{Protocols: []string{ProtocolNameRank}, Points: []Point{{N: 16}}, Seeds: 2, Workload: faults}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("fault workload accepted for a non-injectable protocol")
	}

	g = Grid{Protocols: []string{ProtocolCIW}, Topologies: []Topology{Ring()},
		Points: []Point{{N: 16}}, Seeds: 2, Workload: churn}
	if _, err := NewEnsemble(g); err == nil {
		t.Error("churn workload accepted on a non-complete topology")
	}

	g = Grid{Protocols: []string{ProtocolCIW}, Points: []Point{{N: 16}}, Seeds: 2, Workload: faults}
	if _, err := NewEnsemble(g); err != nil {
		t.Errorf("fault workload rejected for ciw: %v", err)
	}
}

// TestWorkloadReinjectionAndJoinLeaveChurn drives the remaining public
// constructors through a real run: a mid-run adversary re-injection plus an
// unpaired Poisson join/leave mix on a dynamically sized population, with
// the recorded trace carrying the run's identity.
func TestWorkloadReinjectionAndJoinLeaveChurn(t *testing.T) {
	const n0 = 32
	sys, err := New(Config{Protocol: ProtocolCIW, N: n0, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	wl := NewWorkload(
		Reinjection(200, AdversaryTwoLeaders, 32),
		JoinLeaveChurn(400, 2000, 2, 0.5, "", 33),
	)
	var tr *WorkloadTrace
	res := sys.Run(SchedulerSeed(34), WithWorkload(wl), RecordTrace(&tr))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Stabilized {
		t.Fatal("ciw did not re-stabilize after the reinjection + churn mix")
	}
	outs := res.EventOutcomes()
	if len(outs) == 0 || outs[0].Kind != "inject" || outs[0].Class != string(AdversaryTwoLeaders) {
		t.Fatalf("first outcome %+v, want the two-leaders reinjection", outs[0])
	}
	joins, leaves := 0, 0
	for _, eo := range outs[1:] {
		if !eo.Fired {
			t.Fatalf("event %s at %d did not fire", eo.Kind, eo.At)
		}
		switch eo.Kind {
		case "join":
			joins++
		case "leave":
			leaves++
		}
	}
	if joins == 0 || leaves == 0 {
		t.Fatalf("join/leave mix drew %d joins, %d leaves — want both kinds", joins, leaves)
	}
	if want := n0 + joins - leaves; sys.N() != want {
		t.Fatalf("N = %d after %d joins and %d leaves from %d, want %d", sys.N(), joins, leaves, n0, want)
	}
	if tr.Protocol() != ProtocolCIW || tr.N() != n0 {
		t.Fatalf("trace identity (%q, %d), want (%q, %d)", tr.Protocol(), tr.N(), ProtocolCIW, n0)
	}
	fresh, err := New(Config{Protocol: ProtocolCIW, N: n0, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReplayTrace(tr); err != nil {
		t.Fatalf("replaying the recorded mix: %v", err)
	}
}
