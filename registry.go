// registry.go implements the public protocol registry: every protocol the
// repository carries — the paper's ElectLeader_r and the related-work
// baselines that anchor its trade-off curve — runs through the same engine
// (System.Run, schedulers, Ensemble grids). A protocol is selected by name
// via Config.Protocol; what the engine can do with it is governed by the
// optional capability interfaces of internal/sim (Ranker, SafeSetter,
// Injectable, Snapshotter), which the engine probes at the call sites.
// User-defined protocols plug into the identical machinery via NewCustom.

package sspp

import (
	"fmt"
	"math"

	"sspp/internal/adversary"
	"sspp/internal/baseline"
	"sspp/internal/coin"
	"sspp/internal/core"
	"sspp/internal/ranking"
	"sspp/internal/rng"
	"sspp/internal/sim"
)

// The registry protocol names accepted by Config.Protocol.
const (
	// ProtocolElectLeader is the paper's ElectLeader_r (Theorem 1.1):
	// self-stabilizing ranking in O((n²/r)·log n) interactions with
	// 2^O(r²·log n) states. The default.
	ProtocolElectLeader = "electleader"
	// ProtocolCIW is the n-state silent self-stabilizing ranking in the
	// style of Cai, Izumi, and Wada (§2): the state-optimal anchor with
	// Θ(n²) expected time.
	ProtocolCIW = "ciw"
	// ProtocolNameRank is the names-broadcast ranking of Appendix D / [16]
	// (cf. Burman et al.): time-optimal O(n·log n) interactions, O(n·log n)
	// bits per agent, not self-stabilizing.
	ProtocolNameRank = "namerank"
	// ProtocolLooseLE is a loosely-stabilizing leader election in the style
	// of Sudo et al.: fast convergence from any configuration, but the
	// leader is held only for a finite τ-controlled time.
	ProtocolLooseLE = "loosele"
	// ProtocolFastLE is FastLeaderElect (Appendix D.2, Lemma D.10): fast
	// non-self-stabilizing election from awakening starts.
	ProtocolFastLE = "fastle"
)

// Capability names reported by ProtocolInfo.Capabilities.
const (
	// CapabilityRanker: the protocol outputs a full ranking (Ranks works).
	CapabilityRanker = "ranker"
	// CapabilitySafeSet: the protocol has a checkable safe set, so
	// Until(SafeSet) measures the paper's stabilization notion directly.
	// Without it, SafeSet falls back to CorrectOutput + Confirm.
	CapabilitySafeSet = "safe-set"
	// CapabilityInjectable: adversarial starts (Inject) and transient
	// faults (InjectTransient, InjectTransientAt) are supported.
	CapabilityInjectable = "injectable"
	// CapabilitySnapshotter: Snapshot exports role and event detail beyond
	// the generic leader count.
	CapabilitySnapshotter = "snapshotter"
	// CapabilityCompactable: the protocol has a species form, so the
	// count-based species backend (Config.Backend) can run it at populations
	// far beyond one-struct-per-agent storage.
	CapabilityCompactable = "compactable"
	// CapabilityChurnable: agents may join and leave mid-run (workload churn
	// phases). Protocols whose ChurnBounds are equal support replacement
	// churn only: every leave must be paired with a join at the same instant.
	CapabilityChurnable = "churnable"
	// CapabilityContinuous: the protocol steps natively under the
	// continuous-time clock (ClockContinuous / ClockContinuousExact),
	// accruing parallel time from Poisson event times — and, for
	// deterministic species models, τ-leaped bulk stepping.
	CapabilityContinuous = "continuous-stepper"
)

// ProtocolInfo describes one registry protocol.
type ProtocolInfo struct {
	// Name is the Config.Protocol value selecting the protocol.
	Name string
	// Description is a one-line summary with the paper/related-work anchor.
	Description string
	// SelfStabilizing reports whether the protocol recovers from arbitrary
	// configurations (Theorem 1.1's notion; loose stabilization is false).
	SelfStabilizing bool
	// Capabilities lists the optional engine capabilities the protocol
	// implements (Capability* constants).
	Capabilities []string
}

// protocolSpec is one registry entry: constructor, validation and the
// default interaction budget for the protocol's expected running time.
type protocolSpec struct {
	name            string
	description     string
	selfStabilizing bool
	validate        func(cfg Config) error
	build           func(cfg Config, ev *sim.Events) (sim.Protocol, error)
	// compactClean, when non-nil, builds the protocol's species form directly
	// in its clean starting configuration, skipping the agent instance build
	// would construct (for ElectLeader_r: the O(n·r) fresh-ranker transient).
	// Species-backend Systems use it on clean builds; it must be bit-for-bit
	// equivalent to compacting a fresh build at the same Config.
	compactClean func(cfg Config, ev *sim.Events) (sim.CompactModel, error)
	budget       func(cfg Config) uint64
	// zero is a typed nil of the protocol's concrete type: capabilities are
	// a property of the type, so they are probed with type assertions on
	// this value without constructing an instance.
	zero sim.Protocol
}

// electProtocol adapts *core.Protocol to the Injectable and Churnable
// capabilities: the adversarial generators live in internal/adversary (which
// depends on core, so core cannot carry them itself), and churn bookkeeping
// needs mutable state (the vacant-slot stack). Every other capability is
// promoted from the embedded protocol.
type electProtocol struct {
	*core.Protocol
	// vacant holds slot indices whose agents have left and not yet been
	// replaced. ElectLeader_r supports replacement churn only (its detect
	// partition and constants are anchored at the build-time n), so the
	// workload validator guarantees every vacancy is filled by a join at the
	// same instant, before any interaction runs.
	vacant []int
}

// Inject rewrites the configuration according to the named adversary class.
func (e *electProtocol) Inject(class string, src *rng.PRNG) error {
	return adversary.Apply(e.Protocol, adversary.Class(class), src)
}

// InjectTransient corrupts k uniformly chosen agents in place.
func (e *electProtocol) InjectTransient(k int, src *rng.PRNG) []int {
	return adversary.Transient(e.Protocol, k, src)
}

// ChurnBounds pins the population to the build-time n: replacement churn
// only.
func (e *electProtocol) ChurnBounds() (minN, maxN int) {
	n := e.Protocol.N()
	return n, n
}

// LeaveAgent marks slot i vacant. The slot's state is replaced when the
// paired join fires; the protocol is anonymous, so a departed agent is
// indistinguishable from its slot awaiting re-initialization.
func (e *electProtocol) LeaveAgent(i int) error {
	if i < 0 || i >= e.Protocol.N() {
		return fmt.Errorf("sspp: electleader leave index %d out of range [0, %d)", i, e.Protocol.N())
	}
	for _, v := range e.vacant {
		if v == i {
			return fmt.Errorf("sspp: electleader slot %d is already vacant", i)
		}
	}
	e.vacant = append(e.vacant, i)
	return nil
}

// JoinAgent fills the most recent vacancy with a brand-new agent: a fresh
// ranker with fresh randomness (ReplaceAgent), then reshaped by the join
// class. Realizable classes: "" / clean-rankers (the canonical clean join),
// triggered (an agent arriving mid-reset), and random-garbage (an agent
// arriving with arbitrary memory).
func (e *electProtocol) JoinAgent(class string, src *rng.PRNG) (int, error) {
	if len(e.vacant) == 0 {
		return 0, fmt.Errorf("sspp: electleader supports replacement churn only — pair each leave with a join at the same instant")
	}
	i := e.vacant[len(e.vacant)-1]
	e.vacant = e.vacant[:len(e.vacant)-1]
	e.Protocol.ReplaceAgent(i)
	switch adversary.Class(class) {
	case "", adversary.ClassCleanRankers:
	case adversary.ClassTriggered:
		e.Protocol.ForceTriggered(i)
	case adversary.ClassRandomGarbage:
		adversary.CorruptOne(e.Protocol, i, src)
	default:
		return 0, fmt.Errorf("sspp: class %q not realizable as an electleader join state", class)
	}
	return i, nil
}

// validateBaseline is the shared validation of the non-core protocols: a
// real population and no synthetic-coin mode (the Appendix B construction
// is wired into ElectLeader_r's agents only).
func validateBaseline(cfg Config) error {
	if cfg.N < 2 {
		return fmt.Errorf("population size %d < 2", cfg.N)
	}
	if cfg.SyntheticCoins {
		return fmt.Errorf("synthetic coins are only supported by %q", ProtocolElectLeader)
	}
	return nil
}

// looseTau resolves the LooseLE timeout: Config.Tau, defaulting to 4·ln n —
// safely above the heartbeat-epidemic scale (T13).
func looseTau(cfg Config) int32 {
	if cfg.Tau > 0 {
		return cfg.Tau
	}
	tau := int32(4 * math.Log(float64(cfg.N)))
	if tau < 1 {
		tau = 1
	}
	return tau
}

// nLogBudget is the generic budget c·n·ln(n+1) for protocols with
// O(n·log n)-shaped running times.
func nLogBudget(c float64, n int) uint64 {
	nf := float64(n)
	return uint64(c * nf * math.Log(nf+1))
}

// protocolOrder lists the registry in presentation order.
var protocolOrder = []string{
	ProtocolElectLeader, ProtocolCIW, ProtocolNameRank, ProtocolLooseLE, ProtocolFastLE,
}

// protocolSpecs is the registry. Budgets are generous multiples of each
// protocol's expected stabilization shape, mirroring DefaultBudget's role
// for ElectLeader_r.
var protocolSpecs = map[string]*protocolSpec{
	ProtocolElectLeader: {
		name:            ProtocolElectLeader,
		description:     "ElectLeader_r (Thm 1.1): self-stabilizing ranking, O((n²/r)·log n) time, 2^O(r²·log n) states",
		selfStabilizing: true,
		validate:        func(cfg Config) error { return core.ValidateParams(cfg.N, cfg.R) },
		build: func(cfg Config, ev *sim.Events) (sim.Protocol, error) {
			opts := []core.Option{core.WithSeed(cfg.Seed), core.WithEvents(ev)}
			if cfg.SyntheticCoins {
				opts = append(opts, core.WithSyntheticCoins())
			}
			p, err := core.New(cfg.N, cfg.R, opts...)
			if err != nil {
				return nil, err
			}
			return &electProtocol{Protocol: p}, nil
		},
		compactClean: func(cfg Config, ev *sim.Events) (sim.CompactModel, error) {
			// Synthetic coins never reach here: resolveBackend rejects the
			// combination before the species build path runs.
			return core.CompactClean(cfg.N, cfg.R, core.WithSeed(cfg.Seed), core.WithEvents(ev))
		},
		budget: func(cfg Config) uint64 {
			n, r := float64(cfg.N), float64(cfg.R)
			return uint64(1000 * n * n / r * math.Log(n+1))
		},
		zero: (*electProtocol)(nil),
	},
	ProtocolCIW: {
		name:            ProtocolCIW,
		description:     "Cai-Izumi-Wada-style silent ranking (§2): n states, Θ(n²) expected time, self-stabilizing",
		selfStabilizing: true,
		validate:        validateBaseline,
		build: func(cfg Config, _ *sim.Events) (sim.Protocol, error) {
			return baseline.NewCIW(cfg.N), nil
		},
		budget: func(cfg Config) uint64 { return uint64(2000 * cfg.N * cfg.N) },
		zero:   (*baseline.CIW)(nil),
	},
	ProtocolNameRank: {
		name:            ProtocolNameRank,
		description:     "names-broadcast ranking (App. D / [16]): O(n·log n) time whp, O(n·log n) bits, not self-stabilizing",
		selfStabilizing: false,
		validate:        validateBaseline,
		build: func(cfg Config, _ *sim.Events) (sim.Protocol, error) {
			return baseline.NewNameRank(cfg.N, coin.FromPRNG(rng.New(cfg.Seed))), nil
		},
		budget: func(cfg Config) uint64 { return nLogBudget(2000, cfg.N) },
		zero:   (*baseline.NameRank)(nil),
	},
	ProtocolLooseLE: {
		name:            ProtocolLooseLE,
		description:     "loosely-stabilizing election (Sudo et al.): fast convergence, leader held for a finite τ-controlled time",
		selfStabilizing: false,
		validate:        validateBaseline,
		build: func(cfg Config, _ *sim.Events) (sim.Protocol, error) {
			return baseline.NewLooseLE(cfg.N, looseTau(cfg)), nil
		},
		budget: func(cfg Config) uint64 { return nLogBudget(500, cfg.N) },
		zero:   (*baseline.LooseLE)(nil),
	},
	ProtocolFastLE: {
		name:            ProtocolFastLE,
		description:     "FastLeaderElect (App. D.2, Lemma D.10): O(n·log n) election from awakening starts, not self-stabilizing",
		selfStabilizing: false,
		validate:        validateBaseline,
		build: func(cfg Config, _ *sim.Events) (sim.Protocol, error) {
			return ranking.NewFastLE(cfg.N, coin.FromPRNG(rng.New(cfg.Seed))), nil
		},
		budget: func(cfg Config) uint64 { return nLogBudget(1000, cfg.N) },
		zero:   (*ranking.FastLE)(nil),
	},
}

// specFor resolves a Config.Protocol value ("" selects ElectLeader_r).
func specFor(name string) (*protocolSpec, error) {
	if name == "" {
		name = ProtocolElectLeader
	}
	spec, ok := protocolSpecs[name]
	if !ok {
		return nil, fmt.Errorf("sspp: unknown protocol %q (see Protocols())", name)
	}
	return spec, nil
}

// capabilitiesOf probes which optional engine capabilities p implements.
func capabilitiesOf(p sim.Protocol) []string {
	var caps []string
	if _, ok := sim.AsRanker(p); ok {
		caps = append(caps, CapabilityRanker)
	}
	if _, ok := sim.AsSafeSetter(p); ok {
		caps = append(caps, CapabilitySafeSet)
	}
	if _, ok := sim.AsInjectable(p); ok {
		caps = append(caps, CapabilityInjectable)
	}
	if _, ok := sim.AsSnapshotter(p); ok {
		caps = append(caps, CapabilitySnapshotter)
	}
	if _, ok := sim.AsCompactable(p); ok {
		caps = append(caps, CapabilityCompactable)
	}
	if _, ok := sim.AsChurnable(p); ok {
		caps = append(caps, CapabilityChurnable)
	}
	if _, ok := sim.AsContinuousStepper(p); ok {
		caps = append(caps, CapabilityContinuous)
	}
	return caps
}

// Protocols returns the registry in presentation order: every protocol
// Config.Protocol accepts, with its capability set. All of them run through
// the same System.Run and Ensemble machinery.
func Protocols() []ProtocolInfo {
	out := make([]ProtocolInfo, 0, len(protocolOrder))
	for _, name := range protocolOrder {
		spec := protocolSpecs[name]
		out = append(out, ProtocolInfo{
			Name:            spec.name,
			Description:     spec.description,
			SelfStabilizing: spec.selfStabilizing,
			Capabilities:    capabilitiesOf(spec.zero),
		})
	}
	return out
}

// Protocol is the minimal contract a population protocol needs to run on
// the engine: a fixed population, a transition function over ordered pairs,
// and an output-correctness predicate. Implementations may additionally
// provide the optional capabilities (see the Capability* constants) as
// methods — the engine detects them structurally.
//
// Implementations are single-threaded state machines: the engine calls
// Interact sequentially, never concurrently.
type Protocol interface {
	// N returns the population size.
	N() int
	// Interact applies the transition function to the ordered pair of
	// distinct agents (a, b): a initiates, b responds.
	Interact(a, b int)
	// Correct reports whether the current configuration has correct output
	// (for leader election: exactly one agent outputs "leader").
	Correct() bool
}

// NewCustom wraps a user-supplied protocol in a System, so it runs through
// the same engine as the registry protocols: composable Run options,
// pluggable schedulers, stop predicates (SafeSet falls back to confirmed
// correct output unless the protocol implements an InSafeSet method), and
// custom conditions. The default interaction budget is 1000·n·ln(n+1);
// protocols expected to be slower should pass MaxInteractions explicitly.
func NewCustom(p Protocol) (*System, error) {
	if p == nil {
		return nil, fmt.Errorf("sspp: nil protocol")
	}
	if p.N() < 2 {
		return nil, fmt.Errorf("sspp: population size %d < 2", p.N())
	}
	return &System{proto: p, events: sim.NewEvents(), cfg: Config{N: p.N()}, clockMode: ClockDiscrete}, nil
}
