package sspp

import (
	"fmt"
	"testing"
)

// TestIntegrationRecoverFromEveryAdversary drives the public API through the
// full adversary catalogue: every class recovers to the safe set, and
// message-layer faults keep the ranking intact (the §3.2 soft-reset
// guarantee), observed purely through exported surface.
func TestIntegrationRecoverFromEveryAdversary(t *testing.T) {
	const n, r = 16, 4
	for i, class := range AdversaryClasses() {
		class := class
		seed := uint64(i + 1)
		t.Run(string(class), func(t *testing.T) {
			sys, err := New(Config{N: n, R: r, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Inject(class, seed+50); err != nil {
				t.Fatalf("inject: %v", err)
			}
			rankingFault := class == AdversaryCorruptMessages || class == AdversaryDuplicateMessages
			var before []int
			if rankingFault {
				before = sys.Ranks()
			}
			res := sys.Run(Until(SafeSet), SchedulerSeed(seed+99))
			if !res.Stabilized {
				t.Fatalf("no stabilization (events %s)", sys.Events())
			}
			if _, ok := sys.Leader(); !ok {
				t.Fatal("no unique leader in safe set")
			}
			if rankingFault {
				if sys.HardResets() != 0 {
					t.Fatalf("message fault caused %d hard resets", sys.HardResets())
				}
				after := sys.Ranks()
				for j := range before {
					if before[j] != after[j] {
						t.Fatalf("rank of agent %d changed %d -> %d", j, before[j], after[j])
					}
				}
			}
		})
	}
}

// TestIntegrationClosureLongRun stabilizes and then runs 40 more
// default-budget chunks: the output must never regress (closure, Lemma 6.1).
func TestIntegrationClosureLongRun(t *testing.T) {
	sys, err := New(Config{N: 16, R: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Run(Until(SafeSet), SchedulerSeed(3)); !res.Stabilized {
		t.Fatal("setup failed")
	}
	leaderBefore, _ := sys.Leader()
	hard := sys.HardResets()
	for chunk := uint64(0); chunk < 40; chunk++ {
		sys.Step(100+chunk, 10_000)
		if !sys.Correct() {
			t.Fatalf("correctness lost at chunk %d", chunk)
		}
	}
	leaderAfter, ok := sys.Leader()
	if !ok || leaderAfter != leaderBefore {
		t.Fatalf("leader changed %d -> %d after stabilization", leaderBefore, leaderAfter)
	}
	if sys.HardResets() != hard {
		t.Fatal("hard reset after stabilization")
	}
}

// TestIntegrationObserveLifecycle checks that the Observe run option
// reports the full lifecycle from a triggered start: a resetting phase, a
// ranking phase, a verifying phase, and finally the safe set.
func TestIntegrationObserveLifecycle(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(AdversaryTriggered, 5); err != nil {
		t.Fatal(err)
	}
	var sawResetting, sawRanking, sawVerifying, sawSafe bool
	res := sys.Run(Until(SafeSet), SchedulerSeed(6),
		PollEvery(uint64(sys.N())),
		Observe(uint64(sys.N()), func(s Snapshot) {
			if s.Resetting == sys.N() {
				sawResetting = true
			}
			if s.Ranking == sys.N() {
				sawRanking = true
			}
			if s.Verifying == sys.N() {
				sawVerifying = true
			}
			if s.InSafeSet {
				sawSafe = true
			}
		}))
	if !res.Stabilized {
		t.Fatal("trace run did not stabilize")
	}
	if !sawResetting || !sawRanking || !sawVerifying || !sawSafe {
		t.Fatalf("lifecycle incomplete: resetting=%v ranking=%v verifying=%v safe=%v",
			sawResetting, sawRanking, sawVerifying, sawSafe)
	}
}

// TestIntegrationTradeoffDirection verifies the headline trade-off end to
// end through the public API: at fixed n, larger r stabilizes in fewer
// interactions (averaged over seeds), while the state bound grows.
func TestIntegrationTradeoffDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	const n = 32
	mean := func(r int) float64 {
		var sum float64
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			sys, err := New(Config{N: n, R: r, Seed: s})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Inject(AdversaryTriggered, s+9); err != nil {
				t.Fatal(err)
			}
			res := sys.Run(Until(SafeSet), SchedulerSeed(s+17))
			if !res.Stabilized {
				t.Fatalf("r=%d seed=%d: no stabilization", r, s)
			}
			sum += float64(res.Interactions)
		}
		return sum / seeds
	}
	slow, fast := mean(1), mean(8)
	if fast >= slow {
		t.Fatalf("trade-off inverted: r=8 took %.0f >= r=1's %.0f", fast, slow)
	}
	if StateBits(n, 8) <= StateBits(n, 1) {
		t.Fatal("state bits must grow with r")
	}
	t.Logf("n=%d: r=1 -> %.0f interactions, r=8 -> %.0f (%.1fx faster)", n, slow, fast, slow/fast)
}

// TestIntegrationDeterministicReproduction: identical seeds reproduce the
// identical trajectory, interaction for interaction.
func TestIntegrationDeterministicReproduction(t *testing.T) {
	run := func() (uint64, []int, string) {
		sys, err := New(Config{N: 16, R: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(AdversaryRandomGarbage, 12); err != nil {
			t.Fatal(err)
		}
		res := sys.Run(Until(SafeSet), SchedulerSeed(13))
		if !res.Stabilized {
			t.Fatal("no stabilization")
		}
		return res.Interactions, sys.Ranks(), sys.Events()
	}
	i1, r1, e1 := run()
	i2, r2, e2 := run()
	if i1 != i2 || e1 != e2 || fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Fatalf("non-deterministic: (%d,%v,%s) vs (%d,%v,%s)", i1, r1, e1, i2, r2, e2)
	}
}

// TestIntegrationTransientFaults: a stabilized population struck by a
// mid-run fault burst recovers on its own — the raison d'être of
// self-stabilization, through the public API.
func TestIntegrationTransientFaults(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Run(Until(SafeSet), SchedulerSeed(42)); !res.Stabilized {
		t.Fatal("setup failed")
	}
	for round := uint64(0); round < 3; round++ {
		victims, err := sys.InjectTransient(4, 43+round)
		if err != nil {
			t.Fatal(err)
		}
		if len(victims) != 4 {
			t.Fatalf("round %d: %d victims, want 4", round, len(victims))
		}
		if res := sys.Run(Until(SafeSet), SchedulerSeed(50+round)); !res.Stabilized {
			t.Fatalf("round %d: no recovery from transient burst", round)
		}
		if sys.Leaders() != 1 {
			t.Fatalf("round %d: %d leaders after recovery", round, sys.Leaders())
		}
	}
	// Whole-population burst.
	if _, err := sys.InjectTransient(100, 99); err != nil { // clamps to n
		t.Fatal(err)
	}
	if res := sys.Run(Until(SafeSet), SchedulerSeed(60)); !res.Stabilized {
		t.Fatal("no recovery from full-population burst")
	}
}

// TestIntegrationSnapshotConsistency: snapshot fields must agree with the
// predicate methods at all times.
func TestIntegrationSnapshotConsistency(t *testing.T) {
	sys, err := New(Config{N: 16, R: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for chunk := uint64(0); chunk < 20; chunk++ {
		sys.Step(30+chunk, 500)
		snap := sys.Snapshot()
		resetting, rankingCount, verifying := sys.Roles()
		if snap.Resetting != resetting || snap.Ranking != rankingCount || snap.Verifying != verifying {
			t.Fatalf("role mismatch at chunk %d", chunk)
		}
		if snap.Resetting+snap.Ranking+snap.Verifying != sys.N() {
			t.Fatalf("roles do not partition the population at chunk %d", chunk)
		}
		if snap.Leaders != sys.Leaders() {
			t.Fatalf("leader mismatch at chunk %d", chunk)
		}
		if snap.InSafeSet != sys.InSafeSet() {
			t.Fatalf("safe-set mismatch at chunk %d", chunk)
		}
	}
}
